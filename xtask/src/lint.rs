//! `cargo xtask lint` — the K-SPIN custom lint wall, v2.
//!
//! A token-level static-analysis engine: [`crate::lex`] lexes each source
//! file with byte-accurate spans, [`crate::scope`] adds per-token scope
//! facts (enclosing item, `#[cfg(test)]` status, loop nesting depth), and
//! the passes in [`crate::rules`] encode repo policy that rustc/clippy
//! cannot express — see `cargo xtask lint --list-rules` for the catalog
//! and docs/ALGORITHMS.md for the rationale of each rule.
//!
//! A flagged site is exempted by a justification comment on the same line
//! or in the contiguous comment block directly above it:
//!
//! ```text
//! // lint:allow(<rule>) — why this site is provably fine
//! ```
//!
//! Findings additionally pass through the committed `lint-baseline.json`
//! ratchet: the run fails only on findings *not* grandfathered there,
//! stale entries (no longer firing) are reported so the file shrinks
//! monotonically, and `--update-baseline` rewrites it from the current
//! findings, preserving surviving reasons.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use crate::baseline::Ratchet;
use crate::report::{self, parse_format, Format};
use crate::rules::{scan_file, Rule, Summary};
use crate::scope::SourceFile;

/// CLI usage, shared with `cargo xtask` help output.
pub const USAGE: &str = "\
usage: cargo xtask lint [options] [rule ...]

Runs the K-SPIN lint wall over the workspace sources. With rule keys
given (e.g. `no-unwrap`), only those rules run.

options:
  --format <human|json>   report format (json is SARIF-lite; default human)
  --list-rules            print every rule key with a one-line description
  --update-baseline       rewrite lint-baseline.json from current findings
  --deny-stale            fail when baseline entries no longer fire (CI)
  -h, --help              show this help";

/// The workspace root (the parent of the xtask crate).
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().map(Path::to_path_buf).unwrap_or(manifest)
}

/// Collects the `.rs` files the lint wall covers: library/binary sources
/// under `crates/*/src` and the facade's `src/`. Vendored stand-ins,
/// integration tests, benches and examples are out of scope.
fn collect_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates) {
        for entry in entries.flatten() {
            walk_rs(&entry.path().join("src"), &mut out);
        }
    }
    walk_rs(&root.join("src"), &mut out);
    out.sort();
    out
}

pub(crate) fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Lints the workspace rooted at `root` with the given rules.
pub fn lint_workspace_rules(root: &Path, rules: &[Rule]) -> Summary {
    let mut summary = Summary::default();
    for path in collect_sources(root) {
        let Some(file) = SourceFile::load(root, &path) else {
            continue;
        };
        summary.files_scanned += 1;
        scan_file(&file, rules, &mut summary);
    }
    summary
}

#[derive(Debug)]
struct Options {
    rules: Vec<Rule>,
    format: Format,
    update_baseline: bool,
    deny_stale: bool,
    list_rules: bool,
    help: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        rules: Vec::new(),
        format: Format::Human,
        update_baseline: false,
        deny_stale: false,
        list_rules: false,
        help: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => {
                let value = it.next().ok_or("--format needs a value: human or json")?;
                opts.format = parse_format(value)?;
            }
            "--update-baseline" => opts.update_baseline = true,
            "--deny-stale" => opts.deny_stale = true,
            "--list-rules" => opts.list_rules = true,
            "-h" | "--help" => opts.help = true,
            other => {
                if let Some(value) = other.strip_prefix("--format=") {
                    opts.format = parse_format(value)?;
                } else if other.starts_with('-') {
                    return Err(format!("unknown flag `{other}`"));
                } else {
                    let rule = Rule::from_key(other).ok_or_else(|| {
                        format!(
                            "unknown rule `{other}` — available: {}",
                            Rule::ALL.map(Rule::key).join(", ")
                        )
                    })?;
                    opts.rules.push(rule);
                }
            }
        }
    }
    if opts.rules.is_empty() {
        opts.rules.extend(Rule::ALL);
    }
    Ok(opts)
}

/// CLI entry: `cargo xtask lint [options] [rule …]`.
pub fn run(args: &[String]) -> ExitCode {
    let opts = match parse_args(args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if opts.help {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if opts.list_rules {
        for rule in Rule::ALL {
            println!("{:<28} {}", rule.key(), rule.doc());
        }
        return ExitCode::SUCCESS;
    }

    let root = workspace_root();
    let summary = lint_workspace_rules(&root, &opts.rules);
    // With a rule filter active, entries of unselected rules must not be
    // reported stale — those rules simply didn't run. (Reachability-rule
    // entries belong to `cargo xtask panics`/`allocs` and are always
    // inactive here.)
    let active: Vec<&str> = opts.rules.iter().map(|r| r.key()).collect();
    report::finish(
        "cargo-xtask-lint",
        &active,
        &summary,
        opts.update_baseline,
        opts.deny_stale,
        opts.format,
        Vec::new(),
        |ratchet| print_human(&opts.rules, &summary, ratchet),
    )
}

fn print_human(rules: &[Rule], summary: &Summary, ratchet: &Ratchet) {
    println!("cargo xtask lint — {} files scanned", summary.files_scanned);
    for &rule in rules {
        let total = summary.count(rule);
        let new = ratchet.new.iter().filter(|f| f.rule == rule).count();
        let justified = summary.justified_count(rule);
        let status = if new == 0 { "ok" } else { "FAIL" };
        println!(
            "  {:<30} {:>3} new, {:>2} baselined, {:>2} justified   [{status}]",
            rule.label(),
            new,
            total - new,
            justified
        );
    }
    if !ratchet.new.is_empty() {
        println!();
        for f in &ratchet.new {
            println!("{f}");
            if !f.snippet.is_empty() {
                println!("    {}", f.snippet);
            }
        }
        println!("\n{} new finding(s)", ratchet.new.len());
    }
    report::print_stale(ratchet);
}

// ---------------------------------------------------------------------------
// Self-tests: planted violations with exact spans, the JSON report, CLI
// argument handling, and the live workspace against the committed baseline.
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::Baseline;
    use crate::json::{self, Json};
    use crate::report::{render_json, BASELINE_FILE};

    /// A fixture with one deliberately planted violation per scope-aware
    /// rule; every span is asserted byte-exactly.
    #[test]
    fn planted_h1_a1_e1_violations_are_found_with_exact_spans() {
        let src = "\
fn hot(xs: &[u32], d: Weight, w: Weight) -> Weight {
    let mut acc = 0;
    for x in xs {
        let copies = xs.to_vec();
        acc += copies[0] + x;
    }
    let nd = d + w;
    let _ = std::fs::remove_file(\"tmp\");
    out.flush().ok();
    nd
}
";
        let file = SourceFile::from_source("crates/core/src/query/fixture.rs", src);
        let mut summary = Summary::default();
        scan_file(&file, &Rule::ALL, &mut summary);

        let find = |rule: Rule| {
            summary
                .findings
                .iter()
                .find(|f| f.rule == rule)
                .unwrap_or_else(|| panic!("planted {} not found", rule.key()))
        };
        let line = |n: usize| src.lines().nth(n - 1).expect("fixture line");

        let h1 = find(Rule::NoAllocInHotLoop);
        assert_eq!(h1.file, "crates/core/src/query/fixture.rs");
        assert_eq!(h1.line, 4);
        assert_eq!(h1.col, line(4).find("to_vec").expect("pos") + 1);
        assert_eq!(h1.snippet, "let copies = xs.to_vec();");

        let a1 = find(Rule::CheckedWeightArithmetic);
        assert_eq!(a1.line, 7);
        assert_eq!(a1.col, line(7).find('+').expect("pos") + 1);

        let e1 = find(Rule::NoSwallowedResult);
        assert_eq!(e1.line, 8);
        assert_eq!(e1.col, line(8).find("let _").expect("pos") + 1);
        let bare_ok = summary
            .findings
            .iter()
            .filter(|f| f.rule == Rule::NoSwallowedResult)
            .nth(1)
            .expect("the bare .ok(); plant");
        assert_eq!(bare_ok.line, 9);
        assert_eq!(bare_ok.col, line(9).find(".ok").expect("pos") + 1);

        // `acc += copies[0] + x` is inside the loop but not weight-like;
        // only the planted `d + w` fires A1.
        assert_eq!(summary.count(Rule::CheckedWeightArithmetic), 1);
    }

    #[test]
    fn json_report_round_trips_and_carries_spans() {
        let src = "fn hot(d: Weight, w: Weight) -> Weight { d + w }\n";
        let file = SourceFile::from_source("crates/core/src/query/fixture.rs", src);
        let mut summary = Summary {
            files_scanned: 1,
            ..Summary::default()
        };
        scan_file(&file, &Rule::ALL, &mut summary);
        let ratchet = Baseline::default().apply(&summary.findings);

        let text = render_json("cargo-xtask-lint", &summary, &ratchet, Vec::new()).render();
        let doc = json::parse(&text).expect("report must be valid JSON");
        assert_eq!(
            doc.get("tool").and_then(Json::as_str),
            Some("cargo-xtask-lint")
        );
        assert_eq!(doc.get("new_count").and_then(Json::as_usize), Some(1));
        let findings = doc.get("findings").and_then(Json::as_arr).expect("array");
        assert_eq!(
            findings[0].get("rule").and_then(Json::as_str),
            Some("checked-weight-arithmetic")
        );
        assert_eq!(findings[0].get("line").and_then(Json::as_usize), Some(1));
        assert_eq!(
            findings[0].get("col").and_then(Json::as_usize),
            src.find("+ w").map(|p| p + 1)
        );
        assert_eq!(
            findings[0].get("snippet").and_then(Json::as_str),
            Some(src.trim())
        );
    }

    #[test]
    fn cli_rejects_unknown_flags_and_rules() {
        assert!(parse_args(&["--nope".to_string()]).is_err());
        assert!(parse_args(&["bogus-rule".to_string()]).is_err());
        assert!(parse_args(&["--format".to_string(), "xml".to_string()]).is_err());
        assert!(parse_args(&["--format".to_string()]).is_err());
    }

    #[test]
    fn cli_parses_flags_and_rule_filters() {
        let opts = parse_args(&[
            "--format=json".to_string(),
            "--deny-stale".to_string(),
            "no-unwrap".to_string(),
        ])
        .expect("valid args");
        assert_eq!(opts.format, Format::Json);
        assert!(opts.deny_stale);
        assert_eq!(opts.rules, vec![Rule::NoUnwrap]);
        let all = parse_args(&[]).expect("no args is valid");
        assert_eq!(all.rules.len(), Rule::ALL.len());
    }

    // ---- the live workspace ------------------------------------------------

    #[test]
    fn live_workspace_passes_the_ratchet() {
        let root = workspace_root();
        let summary = lint_workspace_rules(&root, &Rule::ALL);
        assert!(summary.files_scanned > 20, "suspiciously few files scanned");
        let baseline = Baseline::load(&root.join(BASELINE_FILE)).expect("baseline parses");
        assert!(
            baseline.entries.len() <= 5,
            "the ratchet must stay near-empty (≤ 5 entries), found {}",
            baseline.entries.len()
        );
        for e in &baseline.entries {
            assert!(
                e.reason.trim().len() >= 3 && !e.reason.starts_with("TODO"),
                "baseline entry {}:{} [{}] needs a real reason",
                e.file,
                e.line,
                e.rule
            );
        }
        let ratchet = baseline.apply(&summary.findings);
        let report: Vec<String> = ratchet.new.iter().map(ToString::to_string).collect();
        assert!(
            ratchet.new.is_empty(),
            "new lint findings in the live workspace:\n{}",
            report.join("\n")
        );
        let stale: Vec<String> = ratchet
            .stale
            .iter()
            .map(|e| format!("{}:{} [{}]", e.file, e.line, e.rule))
            .collect();
        assert!(
            ratchet.stale.is_empty(),
            "stale baseline entries (shrink {BASELINE_FILE}):\n{}",
            stale.join("\n")
        );
    }
}
