//! `cargo xtask lint` — the K-SPIN custom lint wall.
//!
//! Four source-level passes encode repo policy that rustc/clippy cannot
//! express:
//!
//! * **L1 `no-unwrap`** — no `.unwrap()` / `.expect(..)` in non-test code
//!   of `crates/core` and `crates/nvd` (the query hot paths). Remaining
//!   sites must carry a parsed justification comment (below).
//! * **L2 `total-order-weights`** — no `partial_cmp` and no raw-`f64`
//!   binary heaps anywhere outside `crates/graph/src/weight.rs`;
//!   [`kspin_graph::OrderedWeight`] is the single sanctioned
//!   float-ordering site, so a NaN can never poison heap ordering.
//! * **L3 `sanctioned-concurrency`** — no `thread::spawn` and no bare
//!   `Mutex` outside the sanctioned crossbeam scope in
//!   `crates/core/src/index.rs` (Observation 3's parallel build). Ad-hoc
//!   threading elsewhere needs a justification.
//! * **L4 `paper-docs`** — every `pub fn` in `crates/core/src/query/`
//!   carries a doc comment citing the paper section it implements (`§`,
//!   `Algorithm`, `Lemma`, `Theorem`, `Observation`, `Definition`,
//!   `Eq.` or `Fig.`), keeping the query processors traceable to the
//!   source material.
//!
//! A site is exempted by a justification comment on the same line or in
//! the contiguous comment block directly above it:
//!
//! ```text
//! // lint:allow(no-unwrap) — why this site is provably fine
//! ```
//!
//! The rule name must match and a non-empty reason must follow the dash;
//! a bare `lint:allow` with no reason does not parse and the violation
//! stands. Scanning is token-based on comment- and string-stripped
//! source, so occurrences inside strings, comments, or `#[cfg(test)]`
//! regions never trigger.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The lint rules, in report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// L1: no unwrap/expect in hot-path crates.
    NoUnwrap,
    /// L2: float ordering only through `OrderedWeight`.
    TotalOrderWeights,
    /// L3: concurrency only in the sanctioned build scope.
    SanctionedConcurrency,
    /// L4: query-processor `pub fn`s cite their paper section.
    PaperDocs,
}

impl Rule {
    /// All rules, in report order.
    pub const ALL: [Rule; 4] = [
        Rule::NoUnwrap,
        Rule::TotalOrderWeights,
        Rule::SanctionedConcurrency,
        Rule::PaperDocs,
    ];

    /// The name used inside `lint:allow(..)` comments and CLI filters.
    pub fn key(self) -> &'static str {
        match self {
            Rule::NoUnwrap => "no-unwrap",
            Rule::TotalOrderWeights => "total-order-weights",
            Rule::SanctionedConcurrency => "sanctioned-concurrency",
            Rule::PaperDocs => "paper-docs",
        }
    }

    /// Display label with the L-number.
    pub fn label(self) -> &'static str {
        match self {
            Rule::NoUnwrap => "L1 no-unwrap",
            Rule::TotalOrderWeights => "L2 total-order-weights",
            Rule::SanctionedConcurrency => "L3 sanctioned-concurrency",
            Rule::PaperDocs => "L4 paper-docs",
        }
    }
}

/// One lint finding.
#[derive(Debug)]
pub struct Violation {
    pub rule: Rule,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.key(),
            self.message
        )
    }
}

/// Aggregate result of a lint run.
#[derive(Debug, Default)]
pub struct Summary {
    pub violations: Vec<Violation>,
    /// Sites matched by a rule but exempted via `lint:allow`.
    pub justified: BTreeMap<&'static str, usize>,
    pub files_scanned: usize,
}

impl Summary {
    /// Violations of one rule.
    pub fn count(&self, rule: Rule) -> usize {
        self.violations.iter().filter(|v| v.rule == rule).count()
    }

    fn justified_count(&self, rule: Rule) -> usize {
        self.justified.get(rule.key()).copied().unwrap_or(0)
    }
}

// ---------------------------------------------------------------------------
// Source model: comment/string-stripped lines with test-region marking.
// ---------------------------------------------------------------------------

#[derive(Debug, Default, Clone)]
struct Line {
    /// Source with comments removed and string/char literal bodies blanked.
    code: String,
    /// Comment text on the line (`//`, `///`, `//!`, or block comments).
    comment: String,
    /// Inside a `#[cfg(test)]` item.
    in_test: bool,
}

/// A parsed source file ready for rule scans.
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    rel: String,
    lines: Vec<Line>,
}

impl SourceFile {
    /// Parses source text (for fixtures and tests).
    pub fn from_source(rel: &str, src: &str) -> Self {
        let mut lines = split_code_comments(src);
        mark_test_regions(&mut lines);
        SourceFile {
            rel: rel.to_string(),
            lines,
        }
    }

    fn load(root: &Path, path: &Path) -> Option<Self> {
        let src = fs::read_to_string(path).ok()?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        Some(SourceFile::from_source(&rel, &src))
    }

    /// Whether the (1-based) line sits in a `#[cfg(test)]` region.
    #[cfg(test)]
    fn is_test_line(&self, line: usize) -> bool {
        self.lines.get(line - 1).is_some_and(|l| l.in_test)
    }

    /// Whether a match at (1-based) `line` is justified for `rule`: a
    /// `lint:allow(rule) — reason` comment on the line itself or in the
    /// contiguous comment block directly above.
    fn justified(&self, line: usize, rule: Rule) -> bool {
        let idx = line - 1;
        if allows(&self.lines[idx].comment, rule.key()) {
            return true;
        }
        let mut j = idx;
        while j > 0 {
            j -= 1;
            let l = &self.lines[j];
            if !l.code.trim().is_empty() || l.comment.is_empty() {
                break;
            }
            if allows(&l.comment, rule.key()) {
                return true;
            }
        }
        false
    }
}

/// Parses one `lint:allow(..)` comment: the rule list must contain
/// `rule_key` and a dash-separated non-empty reason must follow.
fn allows(comment: &str, rule_key: &str) -> bool {
    let Some(pos) = comment.find("lint:allow(") else {
        return false;
    };
    let rest = &comment[pos + "lint:allow(".len()..];
    let Some(end) = rest.find(')') else {
        return false;
    };
    if !rest[..end].split(',').any(|r| r.trim() == rule_key) {
        return false;
    }
    let after = rest[end + 1..].trim_start();
    let reason = after
        .strip_prefix('—')
        .or_else(|| after.strip_prefix('–'))
        .or_else(|| after.strip_prefix('-'));
    matches!(reason, Some(r) if r.trim().len() >= 3)
}

/// Splits source into per-line (code, comment) with string/char-literal
/// bodies blanked out of the code. Handles line comments, nested block
/// comments, raw strings (`r"…"`, `r#"…"#`, …), byte strings, escapes,
/// and the char-literal/lifetime ambiguity.
fn split_code_comments(src: &str) -> Vec<Line> {
    #[derive(PartialEq)]
    enum State {
        Normal,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let mut state = State::Normal;
    let mut lines = Vec::new();
    let mut cur = Line::default();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Normal;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            State::Normal => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    cur.comment.push_str("//");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    state = State::Str;
                    i += 1;
                } else if (c == 'r' || c == 'b') && raw_str_hashes(&chars, i).is_some() {
                    let hashes = raw_str_hashes(&chars, i).unwrap_or(0);
                    // Skip past r##…" prefix entirely.
                    while i < chars.len() && chars[i] != '"' {
                        i += 1;
                    }
                    i += 1; // the opening quote
                    cur.code.push('"');
                    state = State::RawStr(hashes);
                } else if c == '\'' && char_literal_ahead(&chars, i) {
                    cur.code.push('\'');
                    state = State::Char;
                    i += 1;
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Normal
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    i += 2; // skip the escaped char (may be ", \, n, …)
                } else if c == '"' {
                    cur.code.push('"');
                    state = State::Normal;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && raw_str_closes(&chars, i, hashes) {
                    cur.code.push('"');
                    state = State::Normal;
                    i += 1 + hashes as usize;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
            State::Char => {
                if c == '\\' {
                    i += 2;
                } else if c == '\'' {
                    cur.code.push('\'');
                    state = State::Normal;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
        }
    }
    lines.push(cur);
    lines
}

/// If position `i` starts a raw (byte) string prefix (`r"`, `br#"`, …),
/// returns its hash count.
fn raw_str_hashes(chars: &[char], mut i: usize) -> Option<u32> {
    if chars.get(i) == Some(&'b') {
        i += 1;
    }
    if chars.get(i) != Some(&'r') {
        return None;
    }
    i += 1;
    let mut hashes = 0;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    (chars.get(i) == Some(&'"')).then_some(hashes)
}

/// Whether a `"` at position `i` closes a raw string with `hashes` hashes.
fn raw_str_closes(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Disambiguates a `'` between char literal and lifetime: a literal closes
/// within a few characters (`'x'`, `'\n'`, `'\x7f'`, `'\u{1F600}'`).
fn char_literal_ahead(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// Marks lines belonging to `#[cfg(test)]` items (the attribute, the item
/// header, and everything to the matching close brace — or the `;` of a
/// braceless item).
fn mark_test_regions(lines: &mut [Line]) {
    let mut i = 0;
    while i < lines.len() {
        if !lines[i].code.contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        let start = i;
        let mut depth = 0usize;
        let mut entered = false;
        let mut end = lines.len();
        'scan: for (j, line) in lines.iter().enumerate().skip(start) {
            for c in line.code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        entered = true;
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if entered && depth == 0 {
                            end = j + 1;
                            break 'scan;
                        }
                    }
                    ';' if !entered => {
                        // Braceless item (`#[cfg(test)] use …;`).
                        end = j + 1;
                        break 'scan;
                    }
                    _ => {}
                }
            }
        }
        for line in &mut lines[start..end] {
            line.in_test = true;
        }
        i = end.max(start + 1);
    }
}

// ---------------------------------------------------------------------------
// The rules.
// ---------------------------------------------------------------------------

/// Runs every requested rule over one file, appending to `summary`.
fn scan_file(file: &SourceFile, rules: &[Rule], summary: &mut Summary) {
    for &rule in rules {
        match rule {
            Rule::NoUnwrap => rule_no_unwrap(file, summary),
            Rule::TotalOrderWeights => rule_total_order(file, summary),
            Rule::SanctionedConcurrency => rule_concurrency(file, summary),
            Rule::PaperDocs => rule_paper_docs(file, summary),
        }
    }
}

/// Records a match: a violation, or a justified exemption.
fn record(file: &SourceFile, line: usize, rule: Rule, msg: String, summary: &mut Summary) {
    if file.justified(line, rule) {
        *summary.justified.entry(rule.key()).or_insert(0) += 1;
    } else {
        summary.violations.push(Violation {
            rule,
            file: file.rel.clone(),
            line,
            message: msg,
        });
    }
}

/// L1 scope: the hot-path crates.
fn in_l1_scope(rel: &str) -> bool {
    rel.starts_with("crates/core/src/") || rel.starts_with("crates/nvd/src/")
}

fn rule_no_unwrap(file: &SourceFile, summary: &mut Summary) {
    if !in_l1_scope(&file.rel) {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let n = idx + 1;
        if find_method_call(&line.code, "unwrap") {
            record(
                file,
                n,
                Rule::NoUnwrap,
                ".unwrap() in hot-path code — handle the None/Err case or justify".into(),
                summary,
            );
        }
        if find_method_call(&line.code, "expect") {
            record(
                file,
                n,
                Rule::NoUnwrap,
                ".expect(..) in hot-path code — handle the None/Err case or justify".into(),
                summary,
            );
        }
    }
}

/// Finds `.name(` with nothing between the name and the paren (so
/// `.unwrap_or(..)` does not count as `.unwrap`).
fn find_method_call(code: &str, name: &str) -> bool {
    let needle = format!(".{name}");
    let mut start = 0;
    while let Some(pos) = code[start..].find(&needle) {
        let after = start + pos + needle.len();
        if code[after..].starts_with('(') {
            return true;
        }
        start = after;
    }
    false
}

fn rule_total_order(file: &SourceFile, summary: &mut Summary) {
    if file.rel == "crates/graph/src/weight.rs" {
        return; // the single sanctioned float-ordering site
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let n = idx + 1;
        if line.code.contains("partial_cmp") {
            record(
                file,
                n,
                Rule::TotalOrderWeights,
                "partial_cmp outside crates/graph/src/weight.rs — order scores through OrderedWeight"
                    .into(),
                summary,
            );
        }
        if line.code.contains("BinaryHeap<(f64") || line.code.contains("BinaryHeap<f64") {
            record(
                file,
                n,
                Rule::TotalOrderWeights,
                "raw f64 binary heap — wrap scores in OrderedWeight".into(),
                summary,
            );
        }
    }
}

fn rule_concurrency(file: &SourceFile, summary: &mut Summary) {
    if file.rel == "crates/core/src/index.rs" {
        return; // the sanctioned crossbeam scope (Observation 3)
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let n = idx + 1;
        if line.code.contains("thread::spawn") {
            record(
                file,
                n,
                Rule::SanctionedConcurrency,
                "thread::spawn outside the sanctioned index-build scope".into(),
                summary,
            );
        }
        if line.code.contains("Mutex<") || line.code.contains("Mutex::new") {
            record(
                file,
                n,
                Rule::SanctionedConcurrency,
                "bare Mutex outside the sanctioned index-build scope".into(),
                summary,
            );
        }
    }
}

/// Markers accepted as a paper citation in L4 doc comments.
const CITATION_MARKERS: [&str; 8] = [
    "§",
    "Algorithm",
    "Lemma",
    "Theorem",
    "Observation",
    "Definition",
    "Eq.",
    "Fig.",
];

fn rule_paper_docs(file: &SourceFile, summary: &mut Summary) {
    if !file.rel.starts_with("crates/core/src/query/") {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || !is_pub_fn(&line.code) {
            continue;
        }
        let doc = doc_block_above(file, idx);
        let msg = if doc.is_empty() {
            "undocumented pub fn in the query processor — cite the paper section it implements"
        } else if !CITATION_MARKERS.iter().any(|m| doc.contains(m)) {
            "query-processor doc comment cites no paper section (§/Algorithm/Lemma/…)"
        } else {
            continue;
        };
        record(file, idx + 1, Rule::PaperDocs, msg.into(), summary);
    }
}

/// A `pub fn` visible outside the crate (`pub(crate)`/`pub(super)` are
/// internal and exempt).
fn is_pub_fn(code: &str) -> bool {
    let trimmed = code.trim_start();
    trimmed.starts_with("pub fn ") || trimmed.starts_with("pub async fn ")
}

/// Collects the contiguous `///` doc block directly above line `idx`,
/// skipping attribute lines.
fn doc_block_above(file: &SourceFile, idx: usize) -> String {
    let mut doc = String::new();
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let l = &file.lines[j];
        let code = l.code.trim();
        if code.is_empty() && l.comment.starts_with("///") {
            doc.push_str(&l.comment);
            doc.push('\n');
        } else if code.starts_with("#[") || code.starts_with("#![") {
            continue; // attributes between doc and fn
        } else {
            break;
        }
    }
    doc
}

// ---------------------------------------------------------------------------
// Workspace walking and the CLI entry point.
// ---------------------------------------------------------------------------

/// The workspace root (the parent of the xtask crate).
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().map(Path::to_path_buf).unwrap_or(manifest)
}

/// Collects the `.rs` files the lint wall covers: library/binary sources
/// under `crates/*/src` and the facade's `src/`. Vendored stand-ins,
/// integration tests, benches and examples are out of scope.
fn collect_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates) {
        for entry in entries.flatten() {
            walk_rs(&entry.path().join("src"), &mut out);
        }
    }
    walk_rs(&root.join("src"), &mut out);
    out.sort();
    out
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Lints the workspace rooted at `root` with the given rules.
pub fn lint_workspace_rules(root: &Path, rules: &[Rule]) -> Summary {
    let mut summary = Summary::default();
    for path in collect_sources(root) {
        let Some(file) = SourceFile::load(root, &path) else {
            continue;
        };
        summary.files_scanned += 1;
        scan_file(&file, rules, &mut summary);
    }
    summary
}

/// CLI entry: `cargo xtask lint [rule …]`. With no arguments every rule
/// runs; otherwise only the named rules (`no-unwrap`, …) run.
pub fn run(args: &[String]) -> ExitCode {
    let mut rules: Vec<Rule> = Vec::new();
    for arg in args {
        match Rule::ALL.iter().find(|r| r.key() == arg) {
            Some(&r) => rules.push(r),
            None => {
                eprintln!(
                    "unknown rule `{arg}` — available: {}",
                    Rule::ALL.map(Rule::key).join(", ")
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if rules.is_empty() {
        rules.extend(Rule::ALL);
    }
    let root = workspace_root();
    let summary = lint_workspace_rules(&root, &rules);
    println!("cargo xtask lint — {} files scanned", summary.files_scanned);
    for &rule in &rules {
        let violations = summary.count(rule);
        let justified = summary.justified_count(rule);
        let status = if violations == 0 { "ok" } else { "FAIL" };
        println!(
            "  {:<28} {:>3} violation(s), {:>2} justified   [{status}]",
            rule.label(),
            violations,
            justified
        );
    }
    if summary.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        println!();
        for v in &summary.violations {
            println!("{v}");
        }
        println!("\n{} violation(s)", summary.violations.len());
        ExitCode::FAILURE
    }
}

// ---------------------------------------------------------------------------
// Fixture self-tests: every rule has a must-trigger and a must-not-trigger
// fixture, plus parser and live-workspace checks.
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn run_rule(rel: &str, src: &str, rule: Rule) -> Summary {
        let file = SourceFile::from_source(rel, src);
        let mut summary = Summary::default();
        scan_file(&file, &[rule], &mut summary);
        summary
    }

    // ---- parsing ----------------------------------------------------------

    #[test]
    fn strings_and_comments_are_stripped() {
        let file = SourceFile::from_source(
            "crates/core/src/x.rs",
            "let s = \"don't .unwrap() here\"; // .unwrap() in comment\n",
        );
        assert!(!file.lines[0].code.contains("unwrap"));
        assert!(file.lines[0].comment.contains(".unwrap() in comment"));
    }

    #[test]
    fn raw_strings_and_chars_are_stripped() {
        let file = SourceFile::from_source(
            "crates/core/src/x.rs",
            "let r = r#\".unwrap()\"#; let c = '\\n'; let l: &'static str = \"\";\n",
        );
        assert!(!file.lines[0].code.contains("unwrap"));
        assert!(file.lines[0].code.contains("&'static str"));
    }

    #[test]
    fn nested_block_comments_are_stripped() {
        let file = SourceFile::from_source(
            "crates/core/src/x.rs",
            "a /* outer /* .unwrap() */ still comment */ b\n",
        );
        assert!(!file.lines[0].code.contains("unwrap"));
        assert!(file.lines[0].code.contains('a') && file.lines[0].code.contains('b'));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn live2() {}\n";
        let file = SourceFile::from_source("crates/core/src/x.rs", src);
        assert!(!file.is_test_line(1));
        assert!(file.is_test_line(2));
        assert!(file.is_test_line(4));
        assert!(!file.is_test_line(6));
    }

    #[test]
    fn braceless_cfg_test_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() { x.unwrap(); }\n";
        let file = SourceFile::from_source("crates/core/src/x.rs", src);
        assert!(file.is_test_line(2));
        assert!(!file.is_test_line(3));
    }

    // ---- justification parsing --------------------------------------------

    #[test]
    fn justification_requires_rule_and_reason() {
        assert!(allows(
            "// lint:allow(no-unwrap) — proven by Theorem 1",
            "no-unwrap"
        ));
        assert!(allows(
            "// lint:allow(no-unwrap) - ascii dash reason",
            "no-unwrap"
        ));
        assert!(allows(
            "// lint:allow(no-unwrap, paper-docs) — multi",
            "paper-docs"
        ));
        assert!(!allows("// lint:allow(no-unwrap)", "no-unwrap")); // no reason
        assert!(!allows("// lint:allow(no-unwrap) — ", "no-unwrap")); // empty reason
        assert!(!allows(
            "// lint:allow(paper-docs) — wrong rule",
            "no-unwrap"
        ));
        assert!(!allows("// nothing here", "no-unwrap"));
    }

    #[test]
    fn justification_block_above_is_honored() {
        let src = "fn f() {\n    // lint:allow(no-unwrap) — invariant: list non-empty\n    // (continued explanation)\n    x.unwrap();\n}\n";
        let summary = run_rule("crates/core/src/x.rs", src, Rule::NoUnwrap);
        assert_eq!(summary.count(Rule::NoUnwrap), 0);
        assert_eq!(summary.justified.get("no-unwrap"), Some(&1));
    }

    // ---- L1 ----------------------------------------------------------------

    #[test]
    fn l1_triggers_on_unwrap_and_expect() {
        let src = "fn f() { a.unwrap(); b.expect(\"boom\"); }\n";
        let summary = run_rule("crates/core/src/x.rs", src, Rule::NoUnwrap);
        assert_eq!(summary.count(Rule::NoUnwrap), 2);
    }

    #[test]
    fn l1_ignores_unwrap_or_and_tests_and_other_crates() {
        let ok = "fn f() { a.unwrap_or(0); b.unwrap_or_else(|| 1); c.unwrap_or_default(); }\n";
        assert_eq!(
            run_rule("crates/core/src/x.rs", ok, Rule::NoUnwrap).count(Rule::NoUnwrap),
            0
        );
        let test_only = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert_eq!(
            run_rule("crates/core/src/x.rs", test_only, Rule::NoUnwrap).count(Rule::NoUnwrap),
            0
        );
        let other_crate = "fn f() { a.unwrap(); }\n";
        assert_eq!(
            run_rule("crates/graph/src/x.rs", other_crate, Rule::NoUnwrap).count(Rule::NoUnwrap),
            0
        );
    }

    // ---- L2 ----------------------------------------------------------------

    #[test]
    fn l2_triggers_on_partial_cmp_and_raw_f64_heaps() {
        let src = "fn f() { a.partial_cmp(&b); }\nfn g() -> BinaryHeap<(f64, u32)> { BinaryHeap::new() }\n";
        let summary = run_rule("crates/core/src/x.rs", src, Rule::TotalOrderWeights);
        assert_eq!(summary.count(Rule::TotalOrderWeights), 2);
    }

    #[test]
    fn l2_exempts_the_sanctioned_weight_module() {
        let src = "fn f() { a.partial_cmp(&b); }\n";
        let summary = run_rule("crates/graph/src/weight.rs", src, Rule::TotalOrderWeights);
        assert_eq!(summary.count(Rule::TotalOrderWeights), 0);
    }

    // ---- L3 ----------------------------------------------------------------

    #[test]
    fn l3_triggers_on_spawn_and_mutex() {
        let src = "fn f() { std::thread::spawn(|| {}); }\nstatic M: Mutex<u32> = Mutex::new(0);\n";
        let summary = run_rule("crates/gtree/src/x.rs", src, Rule::SanctionedConcurrency);
        // One per line: the spawn line, and the Mutex line (both Mutex
        // patterns collapse into a single per-line finding).
        assert_eq!(summary.count(Rule::SanctionedConcurrency), 2);
    }

    #[test]
    fn l3_exempts_the_sanctioned_index_scope() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        let summary = run_rule("crates/core/src/index.rs", src, Rule::SanctionedConcurrency);
        assert_eq!(summary.count(Rule::SanctionedConcurrency), 0);
    }

    // ---- L4 ----------------------------------------------------------------

    #[test]
    fn l4_triggers_on_undocumented_and_citation_free_pub_fns() {
        let undocumented = "pub fn naked() {}\n";
        assert_eq!(
            run_rule("crates/core/src/query/x.rs", undocumented, Rule::PaperDocs)
                .count(Rule::PaperDocs),
            1
        );
        let uncited = "/// Does a thing, no citation.\npub fn vague() {}\n";
        assert_eq!(
            run_rule("crates/core/src/query/x.rs", uncited, Rule::PaperDocs).count(Rule::PaperDocs),
            1
        );
    }

    #[test]
    fn l4_accepts_cited_docs_and_ignores_internal_fns() {
        let cited = "/// Implements Algorithm 2 (§4.2).\n#[inline]\npub fn good() {}\n";
        assert_eq!(
            run_rule("crates/core/src/query/x.rs", cited, Rule::PaperDocs).count(Rule::PaperDocs),
            0
        );
        let internal = "pub(crate) fn helper() {}\nfn private() {}\n";
        assert_eq!(
            run_rule("crates/core/src/query/x.rs", internal, Rule::PaperDocs)
                .count(Rule::PaperDocs),
            0
        );
        let outside = "pub fn naked() {}\n";
        assert_eq!(
            run_rule("crates/core/src/heap.rs", outside, Rule::PaperDocs).count(Rule::PaperDocs),
            0
        );
    }

    // ---- the live workspace ------------------------------------------------

    #[test]
    fn live_workspace_passes_clean() {
        let summary = lint_workspace_rules(&workspace_root(), &Rule::ALL);
        assert!(summary.files_scanned > 20, "suspiciously few files scanned");
        let report: Vec<String> = summary.violations.iter().map(ToString::to_string).collect();
        assert!(
            summary.violations.is_empty(),
            "lint violations in the live workspace:\n{}",
            report.join("\n")
        );
    }
}
