//! `cargo xtask panics` — the call-graph panic-reachability certifier.
//!
//! Proves (conservatively) that no panic source is reachable from the
//! declared serving entry points of the release binary. The pipeline:
//!
//! 1. [`crate::items`] parses every `fn` in the certified perimeter
//!    ([`crate::entrypoints::CERT_DIRS`]).
//! 2. [`crate::callgraph`] builds a conservative call graph (trait-object
//!    calls fan out to every same-named method) and runs BFS from the
//!    entry points, keeping shortest-chain parents.
//! 3. This module classifies panic *sources* in each reachable body:
//!    `unwrap`/`expect`, the panicking macros, `[i]` index expressions,
//!    integer `/` and `%` with a non-constant divisor, and the panicking
//!    slice methods (`split_at`, `copy_from_slice`, …). Sites inside
//!    `debug_assert*!` or under a debug/test `cfg` are release-invisible
//!    and skipped.
//!
//! A site that is provably fine carries an inline justification — a
//! `// PANIC-OK: reason` comment on the line or the contiguous comment
//! block above — and is counted but not reported. Everything else is a
//! finding, gated through the same committed `lint-baseline.json` ratchet
//! as `cargo xtask lint` (rule key `panic-reachability`), so the
//! certificate can only tighten over time.
//!
//! The sweep/ratchet/CLI plumbing lives in the shared driver
//! ([`crate::report::run_certifier`]); this module is classifier-only.

use std::process::ExitCode;

use crate::callgraph::{body_tokens, CallGraph};
use crate::lex::TokenKind;
use crate::report::{self, Certifier, Hooks, Site};
use crate::rules::{statement_around, Rule};
use crate::scope::SourceFile;

/// The serving entry points the certificate quantifies over, registered
/// with the other certifier perimeters in [`crate::entrypoints`].
pub use crate::entrypoints::PANIC_ENTRIES as DEFAULT_ENTRIES;

/// CLI usage.
pub const USAGE: &str = "\
usage: cargo xtask panics [options]

Certifies that no unjustified panic source is reachable from the serving
entry points (see --list-entries). Sites are exempted by an inline
`// PANIC-OK: reason` comment; remaining findings pass through the
lint-baseline.json ratchet under the `panic-reachability` rule.

options:
  --format <human|json>   report format (json is SARIF-lite; default human)
  --entry <Type::method>  add an entry point (repeatable; replaces defaults)
  --list-entries          print the default entry points
  --update-baseline       rewrite lint-baseline.json from current findings
  --deny-stale            fail when baseline entries no longer fire (CI)
  -h, --help              show this help";

/// The certifier description block the shared driver runs from.
const CERTIFIER: Certifier = Certifier {
    tool: "cargo-xtask-panics",
    name: "panics",
    usage: USAGE,
    rule: Rule::PanicReachability,
    default_entries: &DEFAULT_ENTRIES,
    warm_up: &[],
    marker: "PANIC-OK",
    reach_adjective: "reachable",
    noun: "panic-reachable",
    hooks: Hooks {
        classify: panic_sites,
        justified: SourceFile::panic_justified,
        dedup: None,
    },
};

/// Classifies every panic source in the certified body of `items[idx]`.
///
/// The scan walks the release-visible body tokens only (the call-graph
/// layer's skip rules for `debug_assert*!`, attributes, gated statements,
/// and nested fns apply here too).
pub fn panic_sites(file: &SourceFile, graph: &CallGraph, idx: usize) -> Vec<Site> {
    let mut out = Vec::new();
    for k in body_tokens(file, &graph.items, idx) {
        let t = &file.tokens[file.code[k]];
        let prev = |n: usize| (k >= n).then(|| &file.tokens[file.code[k - n]]);
        let next = |n: usize| file.code.get(k + n).map(|&i| &file.tokens[i]);
        let site = |what: &str| Site {
            line: t.line,
            col: t.col,
            what: what.to_string(),
        };
        match t.kind {
            TokenKind::Ident => {
                let dot_call = prev(1).is_some_and(|p| p.is_punct("."))
                    && next(1).is_some_and(|n| n.is_punct("("));
                if dot_call {
                    match t.text.as_str() {
                        "unwrap" => out.push(site(".unwrap() on None/Err")),
                        "expect" => out.push(site(".expect() on None/Err")),
                        "split_at" | "split_at_mut" => {
                            out.push(site("split_at past the slice length"));
                        }
                        "copy_from_slice" | "clone_from_slice" => {
                            out.push(site("copy_from_slice length mismatch"));
                        }
                        _ => {}
                    }
                } else if next(1).is_some_and(|n| n.is_punct("!")) {
                    match t.text.as_str() {
                        "panic" => out.push(site("panic! macro")),
                        "unreachable" => out.push(site("unreachable! macro")),
                        "todo" | "unimplemented" => out.push(site("todo!/unimplemented! macro")),
                        "assert" | "assert_eq" | "assert_ne" => {
                            out.push(site("assert! macro (release-armed)"));
                        }
                        _ => {}
                    }
                }
            }
            TokenKind::Punct if t.text == "[" => {
                // An index/slice *expression*: `expr[` — the previous token
                // ends an expression. Types (`&[u32]`), array literals
                // (`= [0; n]`), attributes (`#[`), and macros (`vec![`)
                // all have non-expression predecessors.
                let indexes = prev(1).is_some_and(|p| {
                    matches!(p.kind, TokenKind::Ident | TokenKind::NumLit)
                        && !KEYWORDS_BEFORE_BRACKET.contains(&p.text.as_str())
                        || p.is_punct(")")
                        || p.is_punct("]")
                });
                if indexes {
                    out.push(site("index expression out of bounds"));
                }
            }
            TokenKind::Punct
                if matches!(t.text.as_str(), "/" | "%" | "/=" | "%=")
                    && int_division_panics(file, k) =>
            {
                out.push(site("integer division/remainder by zero"));
            }
            _ => {}
        }
    }
    out
}

/// Identifiers that may directly precede a `[` without ending an
/// expression (`return [a, b]`, `in [0, 1]`, …).
const KEYWORDS_BEFORE_BRACKET: [&str; 6] = ["return", "in", "else", "match", "mut", "dyn"];

/// Whether the `/`, `%`, `/=` or `%=` at code index `k` can panic:
/// integer operands with a divisor that is not a non-zero literal.
/// Float evidence anywhere in the statement (an `f32`/`f64` token or a
/// float literal) clears the site — float division never panics.
fn int_division_panics(file: &SourceFile, k: usize) -> bool {
    let (start, end) = statement_around(file, k);
    for j in start..end {
        let t = &file.tokens[file.code[j]];
        match t.kind {
            TokenKind::Ident if t.text == "f64" || t.text == "f32" => return false,
            TokenKind::NumLit
                if t.text.contains('.') || t.text.ends_with("f64") || t.text.ends_with("f32") =>
            {
                return false;
            }
            _ => {}
        }
    }
    // Divisor is the next code token; a non-zero integer literal cannot
    // raise the div-by-zero panic (and `MIN / -1` needs a negative
    // divisor, so a positive literal clears overflow too).
    if let Some(&i) = file.code.get(k + 1) {
        let t = &file.tokens[i];
        if t.kind == TokenKind::NumLit {
            return literal_value(&t.text) == Some(0);
        }
    }
    true
}

/// Parses an integer literal's value, tolerating `_` separators, radix
/// prefixes, and type suffixes. `None` for unparseable forms (treated as
/// potentially zero by the caller's logic — conservative).
fn literal_value(text: &str) -> Option<u128> {
    let clean: String = text.chars().filter(|c| *c != '_').collect();
    let (radix, digits) = match clean.get(..2) {
        Some("0x") => (16, &clean[2..]),
        Some("0o") => (8, &clean[2..]),
        Some("0b") => (2, &clean[2..]),
        _ => (10, clean.as_str()),
    };
    let digits = digits
        .find(|c: char| !c.is_digit(radix))
        .map_or(digits, |p| &digits[..p]);
    u128::from_str_radix(digits, radix).ok()
}

/// Runs the analysis over `files` from the given entry specs (no warm-up
/// boundary — panics are certified over the *whole* serving surface).
/// Test-facing twin of the [`run`] CLI path.
#[cfg(test)]
pub fn certify(
    files: Vec<SourceFile>,
    entry_specs: &[String],
) -> Result<report::Certificate, String> {
    report::certify(
        files,
        entry_specs,
        &[],
        Rule::PanicReachability,
        &CERTIFIER.hooks,
    )
}

/// CLI entry: `cargo xtask panics [options]`.
pub fn run(args: &[String]) -> ExitCode {
    report::run_certifier(&CERTIFIER, args)
}

// ---------------------------------------------------------------------------
// Self-tests: the classifier on planted fixtures, caught and justified
// chains end-to-end, and the live workspace certificate.
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::Baseline;
    use crate::lint::workspace_root;
    use crate::report::{load_perimeter, Certificate, BASELINE_FILE};

    fn cert(src: &str, entries: &[&str]) -> Certificate {
        let specs: Vec<String> = entries.iter().map(|s| s.to_string()).collect();
        certify(vec![SourceFile::from_source("fixture.rs", src)], &specs)
            .expect("fixture entries resolve")
    }

    #[test]
    fn classifier_finds_each_panic_class_with_exact_spans() {
        let src = "\
fn entry(xs: &[u32], n: usize, d: u32) -> u32 {
    let a = xs.first().unwrap();
    let b = xs.get(1).expect(\"two\");
    let c = xs[n];
    let (_lo, _hi) = xs.split_at(n);
    let q = d / n as u32;
    let r = d % n as u32;
    panic!(\"boom {a} {b} {c} {q} {r}\");
}
";
        let c = cert(src, &["entry"]);
        let kinds: Vec<(&str, usize)> = c
            .summary
            .findings
            .iter()
            .map(|f| (f.message.split(';').next().expect("kind"), f.line))
            .collect();
        assert_eq!(
            kinds,
            vec![
                (".unwrap() on None/Err", 2),
                (".expect() on None/Err", 3),
                ("index expression out of bounds", 4),
                ("split_at past the slice length", 5),
                ("integer division/remainder by zero", 6),
                ("integer division/remainder by zero", 7),
                ("panic! macro", 8),
            ]
        );
        let unwrap = &c.summary.findings[0];
        assert_eq!(
            unwrap.col,
            src.lines().nth(1).expect("l2").find("unwrap").expect("pos") + 1
        );
    }

    #[test]
    fn checked_and_release_invisible_forms_are_clean() {
        let src = "\
fn entry(xs: &[u32], n: usize) -> u32 {
    debug_assert!(xs[n] > 0);
    let a = xs.get(n).copied().unwrap_or(0);
    let b = n / 2 + n % 4;
    let c = (n as f64 / xs.len() as f64) as u32;
    let d = [0u32; 4];
    #[cfg(debug_assertions)]
    audit(xs);
    a + b as u32 + c + d[0]
}
#[cfg(any(debug_assertions, feature = \"audit\"))]
fn audit(xs: &[u32]) { assert!(xs[0] > 0); }
";
        let c = cert(src, &["entry"]);
        let msgs: Vec<&str> = c
            .summary
            .findings
            .iter()
            .map(|f| f.snippet.as_str())
            .collect();
        assert_eq!(
            c.summary.findings.len(),
            1,
            "only the constant-index d[0] may fire: {msgs:?}"
        );
        assert!(c.summary.findings[0].snippet.contains("d[0]"));
    }

    #[test]
    fn unreachable_panics_do_not_fire_and_chains_are_shortest() {
        let src = "\
impl Engine {
    pub fn serve(&self) { self.step(); }
    fn step(&self) { kernel(); }
}
fn kernel() { deep.unwrap(); }
fn offline() { other[9]; }
";
        let c = cert(src, &["Engine::serve"]);
        assert_eq!(c.summary.findings.len(), 1);
        let f = &c.summary.findings[0];
        assert!(
            f.message.contains("Engine::serve → Engine::step → kernel"),
            "chain missing: {}",
            f.message
        );
        assert!(
            !c.summary.findings.iter().any(|f| f.line == 6),
            "offline fn fired"
        );
    }

    #[test]
    fn panic_ok_justifications_silence_but_count() {
        let src = "\
fn entry(xs: &[u32], i: usize) -> u32 {
    // PANIC-OK: i < xs.len() — caller-validated by construction
    let a = xs[i];
    let b = xs[i + 1];
    a + b
}
";
        let c = cert(src, &["entry"]);
        assert_eq!(
            c.summary.findings.len(),
            1,
            "only the unjustified line fires"
        );
        assert_eq!(c.summary.findings[0].line, 4);
        assert_eq!(
            c.summary.justified.get(Rule::PanicReachability.key()),
            Some(&1)
        );
    }

    #[test]
    fn missing_entry_points_are_a_hard_error() {
        let err = match certify(
            vec![SourceFile::from_source("fixture.rs", "fn real() {}\n")],
            &["Engine::renamed_away".to_string()],
        ) {
            Err(msg) => msg,
            Ok(_) => panic!("stale entry spec must be a hard error"),
        };
        assert!(err.contains("renamed_away"));
    }

    #[test]
    fn division_literal_values_parse() {
        assert_eq!(literal_value("0"), Some(0));
        assert_eq!(literal_value("2"), Some(2));
        assert_eq!(literal_value("0x10"), Some(16));
        assert_eq!(literal_value("1_000u64"), Some(1000));
        assert_eq!(literal_value("0b0"), Some(0));
    }

    // ---- the live workspace ------------------------------------------------

    #[test]
    fn live_workspace_certificate_holds() {
        let specs: Vec<String> = DEFAULT_ENTRIES.map(str::to_string).to_vec();
        let cert = certify(load_perimeter(), &specs).expect("all entry points resolve");
        assert!(
            cert.summary.files_scanned > 20,
            "suspiciously small perimeter"
        );
        for (spec, resolved) in &cert.entries {
            assert!(!resolved.is_empty(), "entry {spec} resolved to nothing");
        }
        let baseline =
            Baseline::load(&workspace_root().join(BASELINE_FILE)).expect("baseline parses");
        let key = Rule::PanicReachability.key();
        let panic_entries: Vec<_> = baseline
            .entries
            .into_iter()
            .filter(|e| e.rule == key)
            .collect();
        let ratchet = Baseline {
            note: String::new(),
            entries: panic_entries,
        }
        .apply(&cert.summary.findings);
        let report: Vec<String> = ratchet.new.iter().map(ToString::to_string).collect();
        assert!(
            ratchet.new.is_empty(),
            "unjustified panic-reachable sites:\n{}",
            report.join("\n")
        );
        assert!(
            ratchet.stale.is_empty(),
            "stale panic-reachability baseline entries"
        );
    }
}
