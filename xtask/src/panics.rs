//! `cargo xtask panics` — the call-graph panic-reachability certifier.
//!
//! Proves (conservatively) that no panic source is reachable from the
//! declared serving entry points of the release binary. The pipeline:
//!
//! 1. [`crate::items`] parses every `fn` in the certified perimeter —
//!    `crates/{graph,alt,nvd,core}/src`, the set that is closed under the
//!    `kspin-core::modules` trait dispatch (every `NetworkDistance` /
//!    `LowerBound` implementation lives inside it; the CH/HL/G-tree/…
//!    crates are offline baselines no serving path calls into).
//! 2. [`crate::callgraph`] builds a conservative call graph (trait-object
//!    calls fan out to every same-named method) and runs BFS from the
//!    entry points, keeping shortest-chain parents.
//! 3. This module classifies panic *sources* in each reachable body:
//!    `unwrap`/`expect`, the panicking macros, `[i]` index expressions,
//!    integer `/` and `%` with a non-constant divisor, and the panicking
//!    slice methods (`split_at`, `copy_from_slice`, …). Sites inside
//!    `debug_assert*!` or under a debug/test `cfg` are release-invisible
//!    and skipped.
//!
//! A site that is provably fine carries an inline justification — a
//! `// PANIC-OK: reason` comment on the line or the contiguous comment
//! block above — and is counted but not reported. Everything else is a
//! finding, gated through the same committed `lint-baseline.json` ratchet
//! as `cargo xtask lint` (rule key `panic-reachability`), so the
//! certificate can only tighten over time.

use std::process::ExitCode;

use crate::baseline::Ratchet;
use crate::callgraph::{body_tokens, CallGraph, Reach};
use crate::lex::TokenKind;
use crate::lint::{walk_rs, workspace_root};
use crate::report::{self, parse_format, Format};
use crate::rules::{statement_around, Finding, Rule, Summary};
use crate::scope::SourceFile;

/// The certified perimeter, relative to the workspace root.
const CERT_DIRS: [&str; 4] = [
    "crates/graph/src",
    "crates/alt/src",
    "crates/nvd/src",
    "crates/core/src",
];

/// The serving entry points the certificate quantifies over: every query
/// processor the engine exposes (§4 of the paper), the batch executor,
/// the d-ary heap kernel API, and both Heap Generator constructors.
pub const DEFAULT_ENTRIES: [&str; 12] = [
    "QueryEngine::bknn",
    "QueryEngine::bknn_disjunctive",
    "QueryEngine::bknn_conjunctive",
    "QueryEngine::top_k",
    "QueryEngine::top_k_with",
    "QueryEngine::bknn_expr",
    "BatchExecutor::execute",
    "DaryHeap::push",
    "DaryHeap::pop",
    "DaryHeap::insert_or_decrease",
    "InvertedHeap::create",
    "InvertedHeap::create_seeded",
];

/// CLI usage.
pub const USAGE: &str = "\
usage: cargo xtask panics [options]

Certifies that no unjustified panic source is reachable from the serving
entry points (see --list-entries). Sites are exempted by an inline
`// PANIC-OK: reason` comment; remaining findings pass through the
lint-baseline.json ratchet under the `panic-reachability` rule.

options:
  --format <human|json>   report format (json is SARIF-lite; default human)
  --entry <Type::method>  add an entry point (repeatable; replaces defaults)
  --list-entries          print the default entry points
  --update-baseline       rewrite lint-baseline.json from current findings
  --deny-stale            fail when baseline entries no longer fire (CI)
  -h, --help              show this help";

/// One classified panic source inside an item body.
#[derive(Debug)]
pub struct Site {
    /// 1-based line.
    pub line: usize,
    /// 1-based byte column.
    pub col: usize,
    /// Human description of the panic class.
    pub what: &'static str,
}

/// Classifies every panic source in the certified body of `items[idx]`.
///
/// The scan walks the release-visible body tokens only (the call-graph
/// layer's skip rules for `debug_assert*!`, attributes, gated statements,
/// and nested fns apply here too).
pub fn panic_sites(file: &SourceFile, graph: &CallGraph, idx: usize) -> Vec<Site> {
    let mut out = Vec::new();
    for k in body_tokens(file, &graph.items, idx) {
        let t = &file.tokens[file.code[k]];
        let prev = |n: usize| (k >= n).then(|| &file.tokens[file.code[k - n]]);
        let next = |n: usize| file.code.get(k + n).map(|&i| &file.tokens[i]);
        let site = |what: &'static str| Site {
            line: t.line,
            col: t.col,
            what,
        };
        match t.kind {
            TokenKind::Ident => {
                let dot_call = prev(1).is_some_and(|p| p.is_punct("."))
                    && next(1).is_some_and(|n| n.is_punct("("));
                if dot_call {
                    match t.text.as_str() {
                        "unwrap" => out.push(site(".unwrap() on None/Err")),
                        "expect" => out.push(site(".expect() on None/Err")),
                        "split_at" | "split_at_mut" => {
                            out.push(site("split_at past the slice length"));
                        }
                        "copy_from_slice" | "clone_from_slice" => {
                            out.push(site("copy_from_slice length mismatch"));
                        }
                        _ => {}
                    }
                } else if next(1).is_some_and(|n| n.is_punct("!")) {
                    match t.text.as_str() {
                        "panic" => out.push(site("panic! macro")),
                        "unreachable" => out.push(site("unreachable! macro")),
                        "todo" | "unimplemented" => out.push(site("todo!/unimplemented! macro")),
                        "assert" | "assert_eq" | "assert_ne" => {
                            out.push(site("assert! macro (release-armed)"));
                        }
                        _ => {}
                    }
                }
            }
            TokenKind::Punct if t.text == "[" => {
                // An index/slice *expression*: `expr[` — the previous token
                // ends an expression. Types (`&[u32]`), array literals
                // (`= [0; n]`), attributes (`#[`), and macros (`vec![`)
                // all have non-expression predecessors.
                let indexes = prev(1).is_some_and(|p| {
                    matches!(p.kind, TokenKind::Ident | TokenKind::NumLit)
                        && !KEYWORDS_BEFORE_BRACKET.contains(&p.text.as_str())
                        || p.is_punct(")")
                        || p.is_punct("]")
                });
                if indexes {
                    out.push(site("index expression out of bounds"));
                }
            }
            TokenKind::Punct
                if matches!(t.text.as_str(), "/" | "%" | "/=" | "%=")
                    && int_division_panics(file, k) =>
            {
                out.push(site("integer division/remainder by zero"));
            }
            _ => {}
        }
    }
    out
}

/// Identifiers that may directly precede a `[` without ending an
/// expression (`return [a, b]`, `in [0, 1]`, …).
const KEYWORDS_BEFORE_BRACKET: [&str; 6] = ["return", "in", "else", "match", "mut", "dyn"];

/// Whether the `/`, `%`, `/=` or `%=` at code index `k` can panic:
/// integer operands with a divisor that is not a non-zero literal.
/// Float evidence anywhere in the statement (an `f32`/`f64` token or a
/// float literal) clears the site — float division never panics.
fn int_division_panics(file: &SourceFile, k: usize) -> bool {
    let (start, end) = statement_around(file, k);
    for j in start..end {
        let t = &file.tokens[file.code[j]];
        match t.kind {
            TokenKind::Ident if t.text == "f64" || t.text == "f32" => return false,
            TokenKind::NumLit
                if t.text.contains('.') || t.text.ends_with("f64") || t.text.ends_with("f32") =>
            {
                return false;
            }
            _ => {}
        }
    }
    // Divisor is the next code token; a non-zero integer literal cannot
    // raise the div-by-zero panic (and `MIN / -1` needs a negative
    // divisor, so a positive literal clears overflow too).
    if let Some(&i) = file.code.get(k + 1) {
        let t = &file.tokens[i];
        if t.kind == TokenKind::NumLit {
            return literal_value(&t.text) == Some(0);
        }
    }
    true
}

/// Parses an integer literal's value, tolerating `_` separators, radix
/// prefixes, and type suffixes. `None` for unparseable forms (treated as
/// potentially zero by the caller's logic — conservative).
fn literal_value(text: &str) -> Option<u128> {
    let clean: String = text.chars().filter(|c| *c != '_').collect();
    let (radix, digits) = match clean.get(..2) {
        Some("0x") => (16, &clean[2..]),
        Some("0o") => (8, &clean[2..]),
        Some("0b") => (2, &clean[2..]),
        _ => (10, clean.as_str()),
    };
    let digits = digits
        .find(|c: char| !c.is_digit(radix))
        .map_or(digits, |p| &digits[..p]);
    u128::from_str_radix(digits, radix).ok()
}

/// The full analysis result, kept for reporting and the self-tests.
pub struct Certificate {
    pub graph: CallGraph,
    pub reach: Reach,
    /// Resolved entry items per spec; an empty list is a spec error.
    pub entries: Vec<(String, Vec<usize>)>,
    /// Unjustified findings (rule `panic-reachability`).
    pub summary: Summary,
}

/// Runs the analysis over `files` from the given entry specs.
pub fn certify(files: Vec<SourceFile>, entry_specs: &[String]) -> Result<Certificate, String> {
    let graph = CallGraph::build(&files);
    let mut entries = Vec::new();
    let mut roots = Vec::new();
    let mut missing = Vec::new();
    for spec in entry_specs {
        let resolved = graph.resolve_entry(spec);
        if resolved.is_empty() {
            missing.push(spec.clone());
        }
        roots.extend(resolved.iter().copied());
        entries.push((spec.clone(), resolved));
    }
    if !missing.is_empty() {
        return Err(format!(
            "entry point(s) resolved to no certified fn — renamed or removed? {}",
            missing.join(", ")
        ));
    }
    let reach = graph.reach(&roots);
    let mut summary = Summary {
        files_scanned: files.len(),
        ..Summary::default()
    };
    for idx in 0..graph.items.len() {
        if !graph.items[idx].certified() || !reach.reached(idx) {
            continue;
        }
        let file = &files[graph.items[idx].file_idx];
        for site in panic_sites(file, &graph, idx) {
            if file.panic_justified(site.line) {
                *summary
                    .justified
                    .entry(Rule::PanicReachability.key())
                    .or_insert(0) += 1;
                continue;
            }
            let chain: Vec<String> = reach
                .chain(idx)
                .into_iter()
                .map(|i| graph.items[i].qualified())
                .collect();
            summary.findings.push(Finding {
                rule: Rule::PanicReachability,
                file: file.rel.clone(),
                line: site.line,
                col: site.col,
                message: format!("{}; via {}", site.what, chain.join(" → ")),
                snippet: file.snippet(site.line).to_string(),
            });
        }
    }
    summary.findings.sort_by(|a, b| {
        (&a.file, a.line, a.col)
            .cmp(&(&b.file, b.line, b.col))
            .then_with(|| a.message.cmp(&b.message))
    });
    Ok(Certificate {
        graph,
        reach,
        entries,
        summary,
    })
}

/// Loads the certified perimeter from disk. Shared with `cargo xtask
/// allocs`, which certifies the same four hot-path crates.
pub(crate) fn load_perimeter() -> Vec<SourceFile> {
    let root = workspace_root();
    let mut paths = Vec::new();
    for dir in CERT_DIRS {
        walk_rs(&root.join(dir), &mut paths);
    }
    paths.sort();
    paths
        .iter()
        .filter_map(|p| SourceFile::load(&root, p))
        .collect()
}

#[derive(Debug)]
struct Options {
    format: Format,
    entries: Vec<String>,
    list_entries: bool,
    update_baseline: bool,
    deny_stale: bool,
    help: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        format: Format::Human,
        entries: Vec::new(),
        list_entries: false,
        update_baseline: false,
        deny_stale: false,
        help: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => {
                let value = it.next().ok_or("--format needs a value: human or json")?;
                opts.format = parse_format(value)?;
            }
            "--entry" => {
                let value = it.next().ok_or("--entry needs a Type::method value")?;
                opts.entries.push(value.clone());
            }
            "--list-entries" => opts.list_entries = true,
            "--update-baseline" => opts.update_baseline = true,
            "--deny-stale" => opts.deny_stale = true,
            "-h" | "--help" => opts.help = true,
            other => {
                if let Some(value) = other.strip_prefix("--format=") {
                    opts.format = parse_format(value)?;
                } else if let Some(value) = other.strip_prefix("--entry=") {
                    opts.entries.push(value.to_string());
                } else {
                    return Err(format!("unknown argument `{other}`"));
                }
            }
        }
    }
    if opts.entries.is_empty() {
        opts.entries.extend(DEFAULT_ENTRIES.map(str::to_string));
    }
    Ok(opts)
}

/// CLI entry: `cargo xtask panics [options]`.
pub fn run(args: &[String]) -> ExitCode {
    let opts = match parse_args(args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if opts.help {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if opts.list_entries {
        for e in DEFAULT_ENTRIES {
            println!("{e}");
        }
        return ExitCode::SUCCESS;
    }

    let cert = match certify(load_perimeter(), &opts.entries) {
        Ok(cert) => cert,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };

    // Only this tool's rule participates; other entries stay untouched.
    report::finish(
        "cargo-xtask-panics",
        &[Rule::PanicReachability.key()],
        &cert.summary,
        opts.update_baseline,
        opts.deny_stale,
        opts.format,
        Vec::new(),
        |ratchet| print_human(&cert, ratchet),
    )
}

fn print_human(cert: &Certificate, ratchet: &Ratchet) {
    let certified = cert.graph.items.iter().filter(|i| i.certified()).count();
    let reachable = (0..cert.graph.items.len())
        .filter(|&i| cert.graph.items[i].certified() && cert.reach.reached(i))
        .count();
    println!(
        "cargo xtask panics — {} files, {} certified fns, {} reachable from {} entry points",
        cert.summary.files_scanned,
        certified,
        reachable,
        cert.entries.len()
    );
    for (spec, resolved) in &cert.entries {
        let defs: Vec<String> = resolved
            .iter()
            .map(|&i| {
                let item = &cert.graph.items[i];
                format!("{}:{}", item.file, item.line)
            })
            .collect();
        println!("  entry {:<36} → {}", spec, defs.join(", "));
    }
    let justified = cert
        .summary
        .justified
        .get(Rule::PanicReachability.key())
        .copied()
        .unwrap_or(0);
    println!(
        "  {} new finding(s), {} baselined, {} justified via PANIC-OK",
        ratchet.new.len(),
        ratchet.baselined.len(),
        justified
    );
    if !ratchet.new.is_empty() {
        println!();
        for f in &ratchet.new {
            println!("{f}");
            if !f.snippet.is_empty() {
                println!("    {}", f.snippet);
            }
        }
        println!(
            "\n{} unjustified panic-reachable site(s)",
            ratchet.new.len()
        );
    }
    report::print_stale(ratchet);
}

// ---------------------------------------------------------------------------
// Self-tests: the classifier on planted fixtures, caught and justified
// chains end-to-end, and the live workspace certificate.
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::Baseline;
    use crate::report::BASELINE_FILE;

    fn cert(src: &str, entries: &[&str]) -> Certificate {
        let specs: Vec<String> = entries.iter().map(|s| s.to_string()).collect();
        certify(vec![SourceFile::from_source("fixture.rs", src)], &specs)
            .expect("fixture entries resolve")
    }

    #[test]
    fn classifier_finds_each_panic_class_with_exact_spans() {
        let src = "\
fn entry(xs: &[u32], n: usize, d: u32) -> u32 {
    let a = xs.first().unwrap();
    let b = xs.get(1).expect(\"two\");
    let c = xs[n];
    let (_lo, _hi) = xs.split_at(n);
    let q = d / n as u32;
    let r = d % n as u32;
    panic!(\"boom {a} {b} {c} {q} {r}\");
}
";
        let c = cert(src, &["entry"]);
        let kinds: Vec<(&str, usize)> = c
            .summary
            .findings
            .iter()
            .map(|f| (f.message.split(';').next().expect("kind"), f.line))
            .collect();
        assert_eq!(
            kinds,
            vec![
                (".unwrap() on None/Err", 2),
                (".expect() on None/Err", 3),
                ("index expression out of bounds", 4),
                ("split_at past the slice length", 5),
                ("integer division/remainder by zero", 6),
                ("integer division/remainder by zero", 7),
                ("panic! macro", 8),
            ]
        );
        let unwrap = &c.summary.findings[0];
        assert_eq!(
            unwrap.col,
            src.lines().nth(1).expect("l2").find("unwrap").expect("pos") + 1
        );
    }

    #[test]
    fn checked_and_release_invisible_forms_are_clean() {
        let src = "\
fn entry(xs: &[u32], n: usize) -> u32 {
    debug_assert!(xs[n] > 0);
    let a = xs.get(n).copied().unwrap_or(0);
    let b = n / 2 + n % 4;
    let c = (n as f64 / xs.len() as f64) as u32;
    let d = [0u32; 4];
    #[cfg(debug_assertions)]
    audit(xs);
    a + b as u32 + c + d[0]
}
#[cfg(any(debug_assertions, feature = \"audit\"))]
fn audit(xs: &[u32]) { assert!(xs[0] > 0); }
";
        let c = cert(src, &["entry"]);
        let msgs: Vec<&str> = c
            .summary
            .findings
            .iter()
            .map(|f| f.snippet.as_str())
            .collect();
        assert_eq!(
            c.summary.findings.len(),
            1,
            "only the constant-index d[0] may fire: {msgs:?}"
        );
        assert!(c.summary.findings[0].snippet.contains("d[0]"));
    }

    #[test]
    fn unreachable_panics_do_not_fire_and_chains_are_shortest() {
        let src = "\
impl Engine {
    pub fn serve(&self) { self.step(); }
    fn step(&self) { kernel(); }
}
fn kernel() { deep.unwrap(); }
fn offline() { other[9]; }
";
        let c = cert(src, &["Engine::serve"]);
        assert_eq!(c.summary.findings.len(), 1);
        let f = &c.summary.findings[0];
        assert!(
            f.message.contains("Engine::serve → Engine::step → kernel"),
            "chain missing: {}",
            f.message
        );
        assert!(
            !c.summary.findings.iter().any(|f| f.line == 6),
            "offline fn fired"
        );
    }

    #[test]
    fn panic_ok_justifications_silence_but_count() {
        let src = "\
fn entry(xs: &[u32], i: usize) -> u32 {
    // PANIC-OK: i < xs.len() — caller-validated by construction
    let a = xs[i];
    let b = xs[i + 1];
    a + b
}
";
        let c = cert(src, &["entry"]);
        assert_eq!(
            c.summary.findings.len(),
            1,
            "only the unjustified line fires"
        );
        assert_eq!(c.summary.findings[0].line, 4);
        assert_eq!(
            c.summary.justified.get(Rule::PanicReachability.key()),
            Some(&1)
        );
    }

    #[test]
    fn missing_entry_points_are_a_hard_error() {
        let err = match certify(
            vec![SourceFile::from_source("fixture.rs", "fn real() {}\n")],
            &["Engine::renamed_away".to_string()],
        ) {
            Err(msg) => msg,
            Ok(_) => panic!("stale entry spec must be a hard error"),
        };
        assert!(err.contains("renamed_away"));
    }

    #[test]
    fn division_literal_values_parse() {
        assert_eq!(literal_value("0"), Some(0));
        assert_eq!(literal_value("2"), Some(2));
        assert_eq!(literal_value("0x10"), Some(16));
        assert_eq!(literal_value("1_000u64"), Some(1000));
        assert_eq!(literal_value("0b0"), Some(0));
    }

    // ---- the live workspace ------------------------------------------------

    #[test]
    fn live_workspace_certificate_holds() {
        let specs: Vec<String> = DEFAULT_ENTRIES.map(str::to_string).to_vec();
        let cert = certify(load_perimeter(), &specs).expect("all entry points resolve");
        assert!(
            cert.summary.files_scanned > 20,
            "suspiciously small perimeter"
        );
        for (spec, resolved) in &cert.entries {
            assert!(!resolved.is_empty(), "entry {spec} resolved to nothing");
        }
        let baseline =
            Baseline::load(&workspace_root().join(BASELINE_FILE)).expect("baseline parses");
        let key = Rule::PanicReachability.key();
        let panic_entries: Vec<_> = baseline
            .entries
            .into_iter()
            .filter(|e| e.rule == key)
            .collect();
        let ratchet = Baseline {
            note: String::new(),
            entries: panic_entries,
        }
        .apply(&cert.summary.findings);
        let report: Vec<String> = ratchet.new.iter().map(ToString::to_string).collect();
        assert!(
            ratchet.new.is_empty(),
            "unjustified panic-reachable sites:\n{}",
            report.join("\n")
        );
        assert!(
            ratchet.stale.is_empty(),
            "stale panic-reachability baseline entries"
        );
    }
}
