//! `cargo xtask determinism` — the call-graph determinism certifier.
//!
//! Third certificate in the family ([`crate::panics`], [`crate::allocs`]):
//! proves (conservatively) that the serving steady state is
//! *order-deterministic* — every query processor returns bit-identical
//! results regardless of hash seed, wall clock, rng state, thread count,
//! or chunk-claiming order. This is the static twin of
//! `tests/serving_determinism.rs`, which pins the same property
//! dynamically for one workload on one host; together they back the
//! paper's parallel ≡ sequential serving claim (§5) and the ROADMAP's
//! scatter-gather precondition (every replica must answer byte-identically).
//!
//! The sweep reuses the allocation certifier's phase split: reachability
//! starts from [`crate::entrypoints::STEADY_ENTRIES`] and never crosses
//! the [`crate::entrypoints::WARM_UP`] boundary — index builds may read
//! clocks and hash freely because their *outputs* are sorted/canonical
//! structures, which the build-determinism tests pin separately.
//!
//! The classifier enumerates five nondeterminism source classes:
//!
//! * **(a) hash-order iteration** — `.iter()`/`.keys()`/`.drain()`/… and
//!   `for`-loops over a receiver that resolves to `HashMap`/`HashSet`:
//!   `RandomState` makes the visit order differ per process, so any
//!   result or heap-push order derived from it differs too.
//! * **(b) hash container construction** — `HashMap::new()`,
//!   `HashSet::with_capacity()`, …: building a `RandomState`-hashed
//!   container on a result path is flagged at the source even when the
//!   escaping iteration happens in untypable code.
//! * **(c) time/rng reads** — `Instant::now()`, `SystemTime::now()`,
//!   `thread_rng()`, `from_entropy()`, `random()`: fine for metrics,
//!   nondeterministic for anything that feeds a result.
//! * **(d) order-sensitive float reduction** — `.sum()`/`.product()`
//!   with float evidence in the statement: float addition is
//!   non-associative, so a reduction whose operand order varies with
//!   thread count or chunk claiming varies bit-wise.
//! * **(e) host-shape branches** — `available_parallelism()`,
//!   `thread::current()`: results must not depend on how many workers
//!   the host happens to offer.
//!
//! A site whose ordering provably cannot escape carries an inline
//! `// DETER-OK: <ordering invariant>` justification (same placement
//! grammar as `PANIC-OK`/`ALLOC-OK`) and is counted but not reported.
//! Everything else is a finding under the `determinism` rule of the
//! shared `lint-baseline.json` ratchet.
//!
//! The sweep/ratchet/CLI plumbing lives in the shared driver
//! ([`crate::report::run_certifier`]); this module is classifier-only.

use std::process::ExitCode;

use crate::callgraph::{body_tokens, CallGraph};
use crate::entrypoints::{STEADY_ENTRIES, WARM_UP};
use crate::lex::TokenKind;
use crate::report::{self, Certifier, Hooks, Site};
use crate::rules::{statement_around, Rule};
use crate::scope::SourceFile;

/// CLI usage.
pub const USAGE: &str = "\
usage: cargo xtask determinism [options]

Certifies that no unjustified nondeterminism source (hash-order
iteration, RandomState container construction, time/rng reads,
order-sensitive float reduction, worker-count branches) is reachable
from the steady-state serving entry points (see --list-entries) without
crossing the warm-up boundary. Sites are exempted by an inline
`// DETER-OK: ordering invariant` comment; remaining findings pass
through the lint-baseline.json ratchet under the `determinism` rule.

options:
  --format <human|json>   report format (json is SARIF-lite; default human)
  --entry <Type::method>  add an entry point (repeatable; replaces defaults)
  --list-entries          print the default entry points and warm-up set
  --update-baseline       rewrite lint-baseline.json from current findings
  --deny-stale            fail when baseline entries no longer fire (CI)
  -h, --help              show this help";

/// The certifier description block the shared driver runs from.
const CERTIFIER: Certifier = Certifier {
    tool: "cargo-xtask-determinism",
    name: "determinism",
    usage: USAGE,
    rule: Rule::Determinism,
    default_entries: &STEADY_ENTRIES,
    warm_up: &WARM_UP,
    marker: "DETER-OK",
    reach_adjective: "steady-reachable",
    noun: "nondeterminism",
    hooks: Hooks {
        classify: deter_sites,
        justified: SourceFile::deter_justified,
        dedup: None,
    },
};

/// `RandomState`-hashed std containers whose iteration order is
/// seed-dependent.
const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];

/// Methods that iterate (or visit-and-mutate) a container in its storage
/// order — nondeterministic when the receiver is a [`HASH_TYPES`] type.
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "retain",
    "into_keys",
    "into_values",
];

/// Constructors that build a hashed container (class b). Includes
/// `with_capacity_and_hasher`: even a fixed hasher leaves the order an
/// implementation detail of the bucket layout, so it still needs a
/// DETER-OK invariant to sit on a result path.
const HASH_CTORS: [&str; 5] = [
    "new",
    "with_capacity",
    "with_capacity_and_hasher",
    "default",
    "from_iter",
];

/// Clock-source qualifiers for `::now()` (class c).
const CLOCK_TYPES: [&str; 2] = ["Instant", "SystemTime"];

/// Free/assoc rng calls (class c).
const RNG_CALLS: [&str; 3] = ["thread_rng", "from_entropy", "random"];

/// Order-sensitive reducers when operating on floats (class d).
const FLOAT_REDUCERS: [&str; 2] = ["sum", "product"];

/// Classifies every nondeterminism source in the certified body of
/// `items[idx]`, walking release-visible tokens only (the call-graph
/// layer's skip rules for `debug_assert*!`, attributes, gated
/// statements, and nested fns apply here too).
pub fn deter_sites(file: &SourceFile, graph: &CallGraph, idx: usize) -> Vec<Site> {
    let locals = graph.local_types(file, idx);
    let self_ty = graph.items[idx].self_type.clone();
    let mut out = Vec::new();
    for k in body_tokens(file, &graph.items, idx) {
        let t = &file.tokens[file.code[k]];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let prev = |n: usize| (k >= n).then(|| &file.tokens[file.code[k - n]]);
        let next = |n: usize| file.code.get(k + n).map(|&i| &file.tokens[i]);
        let name = t.text.as_str();

        // (a) `for x in map { … }` — the iterated receiver resolves to a
        // hash type. Method-style iteration is handled by the dot-call
        // arm below, so this only needs the bare `for … in receiver {`
        // shape (optionally through `&`/`mut`).
        if name == "in" {
            let mut j = k + 1;
            while file
                .code
                .get(j)
                .is_some_and(|&i| file.tokens[i].is_punct("&") || file.tokens[i].is_ident("mut"))
            {
                j += 1;
            }
            let at = |n: usize| file.code.get(n).map(|&i| &file.tokens[i]);
            let resolved: Option<(String, &crate::lex::Token)> = if at(j)
                .is_some_and(|r| r.is_ident("self"))
                && at(j + 1).is_some_and(|d| d.is_punct("."))
                && at(j + 2).is_some_and(|f| f.kind == TokenKind::Ident)
                && at(j + 3).is_some_and(|b| b.is_punct("{"))
            {
                let field = &file.tokens[file.code[j + 2]];
                self_ty
                    .as_ref()
                    .and_then(|ty| {
                        graph
                            .field_types
                            .get(&(ty.clone(), field.text.clone()))
                            .cloned()
                    })
                    .map(|ty| (ty, field))
            } else if at(j).is_some_and(|r| r.kind == TokenKind::Ident)
                && at(j + 1).is_some_and(|b| b.is_punct("{"))
            {
                let recv = &file.tokens[file.code[j]];
                locals.get(&recv.text).cloned().map(|ty| (ty, recv))
            } else {
                None
            };
            if let Some((ty, recv)) = resolved {
                if HASH_TYPES.contains(&ty.as_str()) {
                    out.push(Site {
                        line: recv.line,
                        col: recv.col,
                        what: format!("for-loop over `{ty}` iterates in RandomState order"),
                    });
                }
            }
            continue;
        }

        let site = |what: String| Site {
            line: t.line,
            col: t.col,
            what,
        };

        // `.method(…)` (optionally through a `::<…>` turbofish).
        let dot_call = prev(1).is_some_and(|p| p.is_punct("."))
            && next(1).is_some_and(|n| n.is_punct("(") || n.is_punct("::"));
        if dot_call {
            if ITER_METHODS.contains(&name) {
                if let Some(ty) = graph.receiver_type(file, idx, k, &locals) {
                    if HASH_TYPES.contains(&ty.as_str()) {
                        out.push(site(format!(
                            ".{name}() on `{ty}` iterates in RandomState order"
                        )));
                    }
                }
            }
            if FLOAT_REDUCERS.contains(&name) && float_in_statement(file, k) {
                out.push(site(format!(
                    ".{name}() float reduction is order-sensitive"
                )));
            }
            continue;
        }

        // `Qual::name(…)`.
        let qualified = prev(1).is_some_and(|p| p.is_punct("::"))
            && next(1).is_some_and(|n| n.is_punct("(") || n.is_punct("::"));
        if qualified {
            if let Some(q) = prev(2).filter(|q| q.kind == TokenKind::Ident) {
                if name == "now" && CLOCK_TYPES.contains(&q.text.as_str()) {
                    out.push(site(format!("{}::now() reads the clock", q.text)));
                    continue;
                }
                if HASH_CTORS.contains(&name) && HASH_TYPES.contains(&q.text.as_str()) {
                    out.push(site(format!(
                        "{}::{name}() builds a RandomState-hashed container",
                        q.text
                    )));
                    continue;
                }
                if name == "current" && q.text == "thread" {
                    out.push(site(
                        "thread::current() makes results thread-dependent".to_string(),
                    ));
                    continue;
                }
            }
        }

        // Bare or qualified calls that are nondeterministic by name.
        let called = next(1).is_some_and(|n| n.is_punct("(") || n.is_punct("::"));
        if called {
            if RNG_CALLS.contains(&name) {
                out.push(site(format!("{name}() draws nondeterministic randomness")));
            } else if name == "available_parallelism" {
                out.push(site(
                    "available_parallelism() varies with the host's worker count".to_string(),
                ));
            }
        }
    }
    out
}

/// Float evidence anywhere in the statement containing code token `k`:
/// an `f32`/`f64` type token or a float literal. Mirrors the panic
/// certifier's integer-division heuristic, inverted — integer reduction
/// is order-insensitive, float reduction is not.
fn float_in_statement(file: &SourceFile, k: usize) -> bool {
    let (start, end) = statement_around(file, k);
    (start..end).any(|j| {
        let t = &file.tokens[file.code[j]];
        match t.kind {
            TokenKind::Ident => t.text == "f64" || t.text == "f32",
            TokenKind::NumLit => {
                t.text.contains('.') || t.text.ends_with("f64") || t.text.ends_with("f32")
            }
            _ => false,
        }
    })
}

/// Runs the analysis over `files` from the given steady-state entry
/// specs, never crossing the warm-up boundary specs. Test-facing twin of
/// the [`run`] CLI path.
#[cfg(test)]
pub fn certify(
    files: Vec<SourceFile>,
    entry_specs: &[String],
    warm_up_specs: &[String],
) -> Result<report::Certificate, String> {
    report::certify(
        files,
        entry_specs,
        warm_up_specs,
        Rule::Determinism,
        &CERTIFIER.hooks,
    )
}

/// CLI entry: `cargo xtask determinism [options]`.
pub fn run(args: &[String]) -> ExitCode {
    report::run_certifier(&CERTIFIER, args)
}

// ---------------------------------------------------------------------------
// Self-tests: one true positive per source class with exact spans,
// receiver-typed precision, DETER-OK suppression, the warm-up fence, and
// the live workspace certificate.
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::Baseline;
    use crate::lint::workspace_root;
    use crate::report::{load_perimeter, Certificate, BASELINE_FILE};

    fn cert(src: &str, entries: &[&str], warm: &[&str]) -> Certificate {
        let e: Vec<String> = entries.iter().map(|s| s.to_string()).collect();
        let w: Vec<String> = warm.iter().map(|s| s.to_string()).collect();
        certify(vec![SourceFile::from_source("fixture.rs", src)], &e, &w)
            .expect("fixture specs resolve")
    }

    #[test]
    fn classifier_finds_each_nondeterminism_class_with_exact_spans() {
        let src = "\
fn entry(xs: &[f64], n: usize) -> u32 {
    let m = HashMap::new();
    for k in &m { touch(k); }
    let s: HashSet<u32> = HashSet::with_capacity(n);
    let t = Instant::now();
    let r = thread_rng();
    let total: f64 = xs.iter().sum();
    let w = std::thread::available_parallelism();
    m.keys().count() as u32
}
fn touch(_k: u32) {}
";
        let c = cert(src, &["entry"], &[]);
        let kinds: Vec<(&str, usize)> = c
            .summary
            .findings
            .iter()
            .map(|f| (f.message.split(';').next().expect("kind"), f.line))
            .collect();
        assert_eq!(
            kinds,
            vec![
                ("HashMap::new() builds a RandomState-hashed container", 2),
                ("for-loop over `HashMap` iterates in RandomState order", 3),
                (
                    "HashSet::with_capacity() builds a RandomState-hashed container",
                    4
                ),
                ("Instant::now() reads the clock", 5),
                ("thread_rng() draws nondeterministic randomness", 6),
                (".sum() float reduction is order-sensitive", 7),
                (
                    "available_parallelism() varies with the host's worker count",
                    8
                ),
                (".keys() on `HashMap` iterates in RandomState order", 9),
            ]
        );
        let for_loop = &c.summary.findings[1];
        assert_eq!(
            for_loop.col,
            src.lines().nth(2).expect("l3").find("&m").expect("pos") + 2,
            "for-loop finding anchors on the receiver"
        );
    }

    #[test]
    fn deterministic_forms_are_clean() {
        let src = "\
struct Index { by_id: BTreeMap<u32, u32>, slots: Vec<u32> }
impl Index {
    pub fn entry(&self, xs: &[u32]) -> u32 {
        let mut acc = 0u32;
        for v in &self.slots { acc += v; }
        for (_k, v) in &self.by_id { acc += v; }
        let ints: u32 = xs.iter().sum();
        let sorted: Vec<u32> = Vec::with_capacity(4);
        debug_assert!(HashSet::new().is_empty());
        acc + ints + sorted.len() as u32
    }
}
";
        let c = cert(src, &["Index::entry"], &[]);
        assert!(
            c.summary.findings.is_empty(),
            "Vec/BTreeMap iteration, integer sum, and debug-only hash use \
             are all deterministic: {:?}",
            c.summary.findings
        );
    }

    #[test]
    fn untyped_iteration_is_not_flagged_but_construction_is() {
        // `mystery.iter()` cannot be typed — flooding every slice iter
        // would bury the signal, so class (a) requires a resolved hash
        // receiver. The construction class (b) still catches the
        // container at its source.
        let src = "\
fn entry(n: usize) -> usize {
    let m = HashMap::with_capacity(n);
    helper(&m)
}
fn helper(mystery: &M) -> usize {
    mystery.iter().count()
}
";
        let c = cert(src, &["entry"], &[]);
        assert_eq!(c.summary.findings.len(), 1);
        assert!(c.summary.findings[0]
            .message
            .contains("HashMap::with_capacity() builds a RandomState-hashed container"));
    }

    #[test]
    fn deter_ok_justifications_silence_but_count() {
        let src = "\
fn entry(scratch: &mut Scratch) -> u32 {
    // DETER-OK: drained into a sort_unstable before anything escapes
    let m = HashMap::new();
    let t = Instant::now();
    post(m, t)
}
fn post(_m: M, _t: T) -> u32 { 0 }
";
        let c = cert(src, &["entry"], &[]);
        assert_eq!(c.summary.findings.len(), 1, "only the clock read fires");
        assert_eq!(c.summary.findings[0].line, 4);
        assert_eq!(c.summary.justified.get(Rule::Determinism.key()), Some(&1));
    }

    #[test]
    fn warm_up_boundary_fences_build_time_nondeterminism() {
        let src = "\
impl Engine {
    pub fn serve(&mut self) { self.step(); }
    fn step(&mut self) { let t = Instant::now(); }
    pub fn new(n: usize) -> Self {
        let timer = Instant::now();
        let dedup = HashSet::with_capacity(n);
        Engine
    }
}
";
        let c = cert(src, &["Engine::serve"], &["new"]);
        // Only step's clock read is a finding: `new` may hash and time
        // freely because its outputs are canonicalized before serving.
        assert_eq!(c.summary.findings.len(), 1);
        assert_eq!(c.summary.findings[0].line, 3);
        assert!(c.summary.findings[0]
            .message
            .contains("Engine::serve → Engine::step"));
    }

    #[test]
    fn missing_entry_and_warm_up_specs_are_hard_errors() {
        let files = || vec![SourceFile::from_source("fixture.rs", "fn real() {}\n")];
        let err = certify(files(), &["gone".to_string()], &[])
            .err()
            .expect("stale entry spec must be a hard error");
        assert!(err.contains("gone"));
        let err = certify(files(), &["real".to_string()], &["fenced_away".to_string()])
            .err()
            .expect("stale warm-up spec must be a hard error");
        assert!(err.contains("fenced_away") && err.contains("warm-up"));
    }

    // ---- the live workspace ------------------------------------------------

    #[test]
    fn live_workspace_certificate_holds() {
        let specs: Vec<String> = STEADY_ENTRIES.map(str::to_string).to_vec();
        let warm: Vec<String> = WARM_UP.map(str::to_string).to_vec();
        let cert = certify(load_perimeter(), &specs, &warm).expect("all specs resolve");
        assert!(
            cert.summary.files_scanned > 20,
            "suspiciously small perimeter"
        );
        for (spec, resolved) in &cert.entries {
            assert!(!resolved.is_empty(), "entry {spec} resolved to nothing");
        }
        let baseline =
            Baseline::load(&workspace_root().join(BASELINE_FILE)).expect("baseline parses");
        let key = Rule::Determinism.key();
        let deter_entries: Vec<_> = baseline
            .entries
            .into_iter()
            .filter(|e| e.rule == key)
            .collect();
        let ratchet = Baseline {
            note: String::new(),
            entries: deter_entries,
        }
        .apply(&cert.summary.findings);
        let report: Vec<String> = ratchet.new.iter().map(ToString::to_string).collect();
        assert!(
            ratchet.new.is_empty(),
            "unjustified nondeterminism sites:\n{}",
            report.join("\n")
        );
        assert!(
            ratchet.stale.is_empty(),
            "stale determinism baseline entries"
        );
    }
}
