//! A minimal Rust lexer for the lint engine (`cargo xtask lint`).
//!
//! Produces a flat token stream with byte-accurate, 1-based line/column
//! spans. It covers exactly the parts of Rust's lexical grammar that a
//! sound source scanner must get right:
//!
//! * nested block comments (`/* /* */ */`),
//! * raw (byte) strings with any hash count (`r"…"`, `br##"…"##`),
//! * char/byte literals vs. lifetimes (`'a'` vs. `'a`),
//! * raw identifiers (`r#match`),
//! * compound operators lexed as single tokens (`+=`, `::`, `=>`, …).
//!
//! Anything a rule must never match inside a string or comment sits in a
//! dedicated token kind, so the rule passes in `crate::rules` only ever
//! inspect genuine code tokens.

/// The kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unwrap`, `r#match`).
    Ident,
    /// A lifetime (`'a`, `'static`, `'_`) — *not* a char literal.
    Lifetime,
    /// A char or byte literal (`'x'`, `'\u{1F600}'`, `b'\n'`).
    CharLit,
    /// A (byte) string literal, quotes included.
    StrLit,
    /// A raw (byte) string literal, delimiters included.
    RawStrLit,
    /// A numeric literal (`42`, `1.5`, `0x7f`, `3u32`).
    NumLit,
    /// Punctuation; compound operators (`+=`, `::`) lex as one token.
    Punct,
    /// `// …` — including `///` and `//!` doc comments.
    LineComment,
    /// `/* … */` with nesting, newlines included.
    BlockComment,
}

/// One lexed token with its byte-accurate source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// The exact source text, delimiters included.
    pub text: String,
    /// 1-based line of the token's first byte.
    pub line: usize,
    /// 1-based byte column of the token's first byte on `line`.
    pub col: usize,
}

impl Token {
    /// Whether this is a line or block comment.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// Whether this is a doc comment (`///`, `//!`, `/** … */`, `/*! … */`).
    pub fn is_doc_comment(&self) -> bool {
        (self.text.starts_with("///") || self.text.starts_with("//!"))
            || ((self.text.starts_with("/**") || self.text.starts_with("/*!"))
                && self.text.len() > 4)
    }

    /// 1-based line of the token's last byte (block comments and plain
    /// strings may span lines).
    pub fn end_line(&self) -> usize {
        self.line + self.text.matches('\n').count()
    }

    /// Kind + exact-text check for punctuation.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == p
    }

    /// Kind + exact-text check for identifiers.
    pub fn is_ident(&self, id: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == id
    }
}

/// Compound operators, longest first so maximal munch works.
const COMPOUND_OPS: [&str; 24] = [
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "..", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

fn is_ident_start(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphabetic()
}

fn is_ident_continue(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// Byte length of the UTF-8 sequence introduced by leading byte `b`.
fn utf8_len(b: u8) -> usize {
    if b < 0x80 {
        1
    } else if b >= 0xF0 {
        4
    } else if b >= 0xE0 {
        3
    } else if b >= 0xC0 {
        2
    } else {
        1
    }
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    i: usize,
    line: usize,
    line_start: usize,
    tokens: Vec<Token>,
}

/// Lexes Rust source into a token stream. Never fails: unexpected bytes
/// degrade into single-char `Punct` tokens rather than aborting the scan.
pub fn lex(src: &str) -> Vec<Token> {
    let mut lx = Lexer {
        src,
        bytes: src.as_bytes(),
        i: 0,
        line: 1,
        line_start: 0,
        tokens: Vec::new(),
    };
    lx.run();
    lx.tokens
}

impl Lexer<'_> {
    fn peek(&self, k: usize) -> u8 {
        self.bytes.get(self.i + k).copied().unwrap_or(0)
    }

    /// Advances one byte, maintaining the line/column bookkeeping.
    fn bump(&mut self) {
        if self.bytes[self.i] == b'\n' {
            self.line += 1;
            self.line_start = self.i + 1;
        }
        self.i += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            if self.i < self.bytes.len() {
                self.bump();
            }
        }
    }

    fn run(&mut self) {
        while self.i < self.bytes.len() {
            let start = self.i;
            let line = self.line;
            let col = self.i - self.line_start + 1;
            if let Some(kind) = self.next_kind() {
                self.tokens.push(Token {
                    kind,
                    text: self.src[start..self.i].to_string(),
                    line,
                    col,
                });
            }
        }
    }

    fn next_kind(&mut self) -> Option<TokenKind> {
        let c = self.bytes[self.i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                self.bump();
                None
            }
            b'/' if self.peek(1) == b'/' => {
                while self.i < self.bytes.len() && self.bytes[self.i] != b'\n' {
                    self.bump();
                }
                Some(TokenKind::LineComment)
            }
            b'/' if self.peek(1) == b'*' => {
                self.block_comment();
                Some(TokenKind::BlockComment)
            }
            b'"' => {
                self.bump();
                self.string_tail();
                Some(TokenKind::StrLit)
            }
            b'\'' => Some(self.quote()),
            b'0'..=b'9' => {
                self.number();
                Some(TokenKind::NumLit)
            }
            b'r' | b'b' => Some(self.raw_or_ident()),
            _ if is_ident_start(c) => {
                self.ident();
                Some(TokenKind::Ident)
            }
            _ => Some(self.punct()),
        }
    }

    /// `/* … */` with nesting; the cursor sits on the opening `/`.
    fn block_comment(&mut self) {
        self.bump_n(2);
        let mut depth = 1u32;
        while self.i < self.bytes.len() && depth > 0 {
            if self.bytes[self.i] == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump_n(2);
            } else if self.bytes[self.i] == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump_n(2);
            } else {
                self.bump();
            }
        }
    }

    /// Consumes a string body after its opening quote, honoring escapes.
    fn string_tail(&mut self) {
        while self.i < self.bytes.len() {
            match self.bytes[self.i] {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Consumes a char-literal body after its opening quote (escapes,
    /// `\u{…}` included) through the closing quote.
    fn char_tail(&mut self) {
        while self.i < self.bytes.len() {
            match self.bytes[self.i] {
                b'\\' => self.bump_n(2),
                b'\'' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// A `'` in code position: char literal or lifetime.
    fn quote(&mut self) -> TokenKind {
        let n1 = self.peek(1);
        if n1 == b'\\' {
            self.bump(); // opening '
            self.char_tail();
            return TokenKind::CharLit;
        }
        if is_ident_start(n1) {
            // Scan the ident run; a closing quote right after it makes this
            // a char literal ('a'), otherwise it is a lifetime ('a, 'static).
            let mut k = 2;
            while is_ident_continue(self.peek(k)) {
                k += 1;
            }
            if self.peek(k) == b'\'' {
                self.bump_n(k + 1);
                return TokenKind::CharLit;
            }
            self.bump(); // '
            self.ident();
            return TokenKind::Lifetime;
        }
        // Non-ident single char: '(' , '€', …
        let l = utf8_len(n1);
        if n1 != 0 && self.peek(1 + l) == b'\'' {
            self.bump_n(2 + l);
            return TokenKind::CharLit;
        }
        // Stray quote (only reachable in malformed source).
        self.bump();
        TokenKind::Punct
    }

    fn number(&mut self) {
        while self.i < self.bytes.len() {
            let c = self.bytes[self.i];
            // `.` continues the literal only before a digit (1.5), so `1..2`
            // and `1.method()` keep their `.`s as punctuation.
            if is_ident_continue(c) || (c == b'.' && self.peek(1).is_ascii_digit()) {
                self.bump();
            } else {
                break;
            }
        }
    }

    fn ident(&mut self) {
        while self.i < self.bytes.len() && is_ident_continue(self.bytes[self.i]) {
            self.bump();
        }
    }

    /// `r`/`b` may introduce raw strings (`r"`, `br#"`), byte literals
    /// (`b'x'`, `b"…"`), or raw identifiers (`r#match`); anything else is a
    /// plain identifier.
    fn raw_or_ident(&mut self) -> TokenKind {
        let c0 = self.bytes[self.i];
        if c0 == b'b' && self.peek(1) == b'\'' {
            self.bump_n(2); // b'
            self.char_tail();
            return TokenKind::CharLit;
        }
        if c0 == b'b' && self.peek(1) == b'"' {
            self.bump_n(2); // b"
            self.string_tail();
            return TokenKind::StrLit;
        }
        let r_at = usize::from(c0 == b'b'); // br"…" has the r second
        if self.peek(r_at) == b'r' {
            let mut hashes = 0usize;
            let mut k = r_at + 1;
            while self.peek(k) == b'#' {
                hashes += 1;
                k += 1;
            }
            if self.peek(k) == b'"' {
                self.bump_n(k + 1); // prefix + opening quote
                self.raw_string_tail(hashes);
                return TokenKind::RawStrLit;
            }
            if c0 == b'r' && hashes == 1 && is_ident_start(self.peek(k)) {
                self.bump_n(2); // r#
                self.ident();
                return TokenKind::Ident;
            }
        }
        self.ident();
        TokenKind::Ident
    }

    /// Consumes a raw-string body after the opening quote: ends at a `"`
    /// followed by exactly `hashes` `#`s.
    fn raw_string_tail(&mut self, hashes: usize) {
        while self.i < self.bytes.len() {
            if self.bytes[self.i] == b'"' && (1..=hashes).all(|h| self.peek(h) == b'#') {
                self.bump_n(1 + hashes);
                return;
            }
            self.bump();
        }
    }

    fn punct(&mut self) -> TokenKind {
        for op in COMPOUND_OPS {
            if self.src[self.i..].starts_with(op) {
                self.bump_n(op.len());
                return TokenKind::Punct;
            }
        }
        self.bump_n(utf8_len(self.bytes[self.i]));
        TokenKind::Punct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    fn find<'a>(tokens: &'a [Token], text: &str) -> &'a Token {
        tokens
            .iter()
            .find(|t| t.text == text)
            .unwrap_or_else(|| panic!("token `{text}` not lexed"))
    }

    #[test]
    fn spans_survive_raw_strings() {
        // The raw string contains `//`, quotes, and `.unwrap()` — none of it
        // may leak into code tokens, and the span of `foo` after it must be
        // byte-exact.
        let src = r####"let s = r##"no // ".unwrap()" here"##; foo();"####;
        let tokens = lex(src);
        assert!(!tokens.iter().any(|t| t.is_comment()));
        assert!(!tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "unwrap"));
        let raw = tokens
            .iter()
            .find(|t| t.kind == TokenKind::RawStrLit)
            .expect("raw string token");
        assert_eq!(raw.col, 9);
        let foo = find(&tokens, "foo");
        assert_eq!((foo.line, foo.col), (1, src.find("foo").unwrap() + 1));
    }

    #[test]
    fn spans_survive_nested_block_comments() {
        let src = "a /* x /* y */ z */ b\nc";
        let tokens = lex(src);
        assert_eq!(
            tokens.iter().filter(|t| t.is_comment()).count(),
            1,
            "one nested block comment"
        );
        let b = find(&tokens, "b");
        assert_eq!((b.line, b.col), (1, 21));
        let c = find(&tokens, "c");
        assert_eq!((c.line, c.col), (2, 1));
    }

    #[test]
    fn lifetimes_and_char_literals_are_distinguished() {
        let src = "fn f<'a>(x: &'a str) -> char { 'a' }";
        let tokens = lex(src);
        let lifetimes: Vec<_> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.text == "'a"));
        let chars: Vec<_> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::CharLit)
            .collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "'a'");
        // 'static and '_ are lifetimes; '\n' and '\u{1F600}' are chars.
        let more = lex(r"fn g<'_>(l: &'static str) { let a = '\n'; let b = '\u{1F600}'; }");
        assert_eq!(
            more.iter()
                .filter(|t| t.kind == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            more.iter().filter(|t| t.kind == TokenKind::CharLit).count(),
            2
        );
    }

    #[test]
    fn multiline_strings_advance_lines() {
        let src = "let s = \"line1\nline2\"; foo();";
        let tokens = lex(src);
        let foo = find(&tokens, "foo");
        assert_eq!((foo.line, foo.col), (2, 9));
        let s = tokens
            .iter()
            .find(|t| t.kind == TokenKind::StrLit)
            .expect("string token");
        assert_eq!(s.end_line(), 2);
    }

    #[test]
    fn compound_operators_lex_as_single_tokens() {
        let toks = kinds("a += b; c::d(); e => f; g..=h;");
        let puncts: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert!(puncts.contains(&"+="));
        assert!(puncts.contains(&"::"));
        assert!(puncts.contains(&"=>"));
        assert!(puncts.contains(&"..="));
    }

    #[test]
    fn raw_identifiers_and_byte_literals() {
        let toks = kinds(r#"let r#match = b'\n'; let bs = b"x";"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "r#match"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::CharLit && t == r"b'\n'"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::StrLit && t == "b\"x\""));
    }

    #[test]
    fn doc_comments_are_recognized() {
        let tokens = lex("/// doc\n//! inner\n// plain\n/* block */\nfn f() {}\n");
        let docs: Vec<bool> = tokens
            .iter()
            .filter(|t| t.is_comment())
            .map(Token::is_doc_comment)
            .collect();
        assert_eq!(docs, vec![true, true, false, false]);
    }

    #[test]
    fn escaped_quotes_do_not_end_literals() {
        let tokens = lex(r#"let a = "x\"y"; let c = '\''; z();"#);
        assert!(tokens.iter().any(|t| t.text == "z"));
        assert!(!tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident && (t.text == "x" || t.text == "y")));
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let toks = kinds("0..10; 1.5; 1.max(2); 0x7f_u32;");
        let nums: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::NumLit)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5", "1", "2", "0x7f_u32"]);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "max"));
    }
}
