//! `cargo xtask` — repo automation entry point.

mod allocs;
mod baseline;
mod callgraph;
mod determinism;
mod entrypoints;
mod items;
mod json;
mod lex;
mod lint;
mod panics;
mod report;
mod rules;
mod scope;
mod taint;

use std::process::ExitCode;

const USAGE: &str = "\
usage: cargo xtask <task> [options]

tasks:
  lint         run the K-SPIN lint wall (see `cargo xtask lint --help`)
  panics       certify serving hot paths panic-free (see `cargo xtask panics --help`)
  allocs       certify serving steady state alloc-free (see `cargo xtask allocs --help`)
  determinism  certify serving results order-deterministic (see `cargo xtask determinism --help`)
  taint        certify untrusted input sanitized before every sink (see `cargo xtask taint --help`)

Run `cargo xtask lint --list-rules` for the rule catalog.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint::run(&args[1..]),
        Some("panics") => panics::run(&args[1..]),
        Some("allocs") => allocs::run(&args[1..]),
        Some("determinism") => determinism::run(&args[1..]),
        Some("taint") => taint::run(&args[1..]),
        Some("-h" | "--help") => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown xtask `{other}`\n\n{USAGE}");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
