//! `cargo xtask` — repo automation entry point.

mod lint;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint::run(&args[1..]),
        Some(other) => {
            eprintln!("unknown xtask `{other}`; available: lint");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::FAILURE
        }
    }
}
