//! `cargo xtask allocs` — the call-graph allocation-freedom certifier.
//!
//! Sibling of [`crate::panics`]: proves (conservatively) that the
//! serving *steady state* performs no unjustified heap allocation after
//! warm-up. The pipeline shares the panic certifier's symbol layers —
//! [`crate::items`] parses the `crates/{graph,alt,nvd,core}` perimeter,
//! [`crate::callgraph`] builds the conservative call graph — and differs
//! in two ways:
//!
//! 1. **Reachability is phase-split.** The sweep starts from the
//!    steady-state entry points ([`crate::entrypoints::STEADY_ENTRIES`])
//!    but never crosses into the warm-up boundary
//!    ([`crate::entrypoints::WARM_UP`]): constructors, index builds, the
//!    Heap Generator's `create`/`create_seeded` first-fill and seed-cache
//!    admission are *allowed* to allocate, mirroring the paper's
//!    generation-then-extraction phase structure. The dynamic twin
//!    (`tests/alloc_steady_state.rs`) pins what the carve-out actually
//!    costs per query.
//! 2. **The classifier enumerates allocation sources**, not panic
//!    sources: allocating constructors (`Vec::new`, `Box::new`,
//!    `HashMap::with_capacity`, …), the `vec!`/`format!` macros,
//!    always-allocating methods (`.to_vec()`, `.to_owned()`,
//!    `.to_string()`, `.collect()`, and — conservatively — any
//!    `.clone()`), and container *growth* methods (`.push()`,
//!    `.insert()`, `.extend()`, `.resize()`, …). Growth calls are
//!    receiver-typed: a call on a workspace type with a certified method
//!    of that name is charged to the callee body through the call-graph
//!    edge instead of the call site; every other receiver — std
//!    container, field, or untyped — is a site.
//!
//! A site that is provably amortized-free carries an inline
//! `// ALLOC-OK: <capacity invariant>` justification (same placement
//! grammar as `PANIC-OK`) and is counted but not reported. Sites the
//! token-level H1 hot-loop lint already polices are deduplicated out of
//! this report. Everything else is a finding under the
//! `alloc-reachability` rule of the shared `lint-baseline.json` ratchet.
//!
//! The sweep/ratchet/CLI plumbing lives in the shared driver
//! ([`crate::report::run_certifier`]); this module is classifier-only.

use std::process::ExitCode;

use crate::callgraph::{body_tokens, CallGraph};
use crate::entrypoints::{STEADY_ENTRIES, WARM_UP};
use crate::lex::TokenKind;
use crate::report::{self, Certifier, Hooks, Site};
use crate::rules::{h1_no_alloc, Rule};
use crate::scope::SourceFile;

/// CLI usage.
pub const USAGE: &str = "\
usage: cargo xtask allocs [options]

Certifies that no unjustified allocation source is reachable from the
steady-state serving entry points (see --list-entries) without crossing
the warm-up boundary (constructors, index builds, heap generation).
Sites are exempted by an inline `// ALLOC-OK: capacity invariant`
comment; remaining findings pass through the lint-baseline.json ratchet
under the `alloc-reachability` rule.

options:
  --format <human|json>   report format (json is SARIF-lite; default human)
  --entry <Type::method>  add an entry point (repeatable; replaces defaults)
  --list-entries          print the default entry points and warm-up set
  --update-baseline       rewrite lint-baseline.json from current findings
  --deny-stale            fail when baseline entries no longer fire (CI)
  -h, --help              show this help";

/// The certifier description block the shared driver runs from.
const CERTIFIER: Certifier = Certifier {
    tool: "cargo-xtask-allocs",
    name: "allocs",
    usage: USAGE,
    rule: Rule::AllocReachability,
    default_entries: &STEADY_ENTRIES,
    warm_up: &WARM_UP,
    marker: "ALLOC-OK",
    reach_adjective: "steady-reachable",
    noun: "steady-state allocation",
    hooks: Hooks {
        classify: alloc_sites,
        justified: SourceFile::alloc_justified,
        dedup: Some(h1_spans),
    },
};

/// Allocating `Type::ctor(…)` qualifiers.
const ALLOC_TYPES: [&str; 11] = [
    "Vec",
    "VecDeque",
    "String",
    "HashMap",
    "HashSet",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "Box",
    "Rc",
    "Arc",
];

/// Constructor methods that allocate when qualified by an
/// [`ALLOC_TYPES`] name. `Arc::clone`/`Rc::clone` are deliberately not
/// here: they bump a refcount, and the workspace's qualified-call idiom
/// exists precisely to keep them distinguishable from deep clones.
const CTOR_METHODS: [&str; 6] = [
    "new",
    "with_capacity",
    "with_capacity_and_hasher",
    "from",
    "from_iter",
    "default",
];

/// Macros that allocate.
const ALLOC_MACROS: [&str; 2] = ["vec", "format"];

/// Dot methods that allocate on every receiver that compiles (`.clone()`
/// is conservative: a `Copy` receiver's clone is free, but proving
/// `Copy` is beyond this scan — justify or restructure).
const ALWAYS_ALLOC_METHODS: [&str; 7] = [
    "to_vec",
    "to_owned",
    "to_string",
    "collect",
    "clone",
    "concat",
    "repeat",
];

/// Container growth methods — allocation depends on spare capacity, so
/// the receiver decides: certified workspace receivers are charged via
/// the call edge, everything else is a site.
const GROWTH_METHODS: [&str; 9] = [
    "push",
    "push_str",
    "push_back",
    "insert",
    "extend",
    "extend_from_slice",
    "resize",
    "reserve",
    "append",
];

/// The `(line, col)` sites the token-level H1 hot-loop lint already
/// polices in `file` — deduplicated out of this certifier's report.
fn h1_spans(file: &SourceFile) -> Vec<(usize, usize)> {
    h1_no_alloc::matches(file)
        .into_iter()
        .map(|(line, col, _)| (line, col))
        .collect()
}

/// Classifies every allocation source in the certified body of
/// `items[idx]`, walking release-visible tokens only (the call-graph
/// layer's skip rules for `debug_assert*!`, attributes, gated
/// statements, and nested fns apply here too).
pub fn alloc_sites(file: &SourceFile, graph: &CallGraph, idx: usize) -> Vec<Site> {
    let locals = graph.local_types(file, idx);
    let mut out = Vec::new();
    for k in body_tokens(file, &graph.items, idx) {
        let t = &file.tokens[file.code[k]];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let prev = |n: usize| (k >= n).then(|| &file.tokens[file.code[k - n]]);
        let next = |n: usize| file.code.get(k + n).map(|&i| &file.tokens[i]);
        let site = |what: String| Site {
            line: t.line,
            col: t.col,
            what,
        };
        let name = t.text.as_str();
        if next(1).is_some_and(|n| n.is_punct("!")) {
            if ALLOC_MACROS.contains(&name) {
                out.push(site(format!("{name}! allocates")));
            }
            continue;
        }
        // `.method(…)` (optionally through a `::<…>` turbofish).
        let dot_call = prev(1).is_some_and(|p| p.is_punct("."))
            && next(1).is_some_and(|n| n.is_punct("(") || n.is_punct("::"));
        if dot_call {
            if ALWAYS_ALLOC_METHODS.contains(&name) {
                let note = if name == "clone" {
                    " (conservative: receiver may be non-Copy)"
                } else {
                    ""
                };
                out.push(site(format!(".{name}() allocates{note}")));
            } else if GROWTH_METHODS.contains(&name) {
                match graph.receiver_type(file, idx, k, &locals) {
                    Some(ty)
                        if graph
                            .certified_methods
                            .contains(&(ty.clone(), t.text.clone())) =>
                    {
                        // Charged to the certified callee body, which the
                        // reachability sweep scans through the call edge.
                    }
                    Some(ty) => out.push(site(format!(
                        ".{name}() on `{ty}` may grow past capacity and reallocate"
                    ))),
                    None => out.push(site(format!(
                        ".{name}() on untyped receiver may grow and reallocate"
                    ))),
                }
            }
            continue;
        }
        // `Type::ctor(…)`.
        if prev(1).is_some_and(|p| p.is_punct("::"))
            && next(1).is_some_and(|n| n.is_punct("(") || n.is_punct("::"))
            && CTOR_METHODS.contains(&name)
        {
            if let Some(q) = prev(2).filter(|q| q.kind == TokenKind::Ident) {
                if ALLOC_TYPES.contains(&q.text.as_str()) {
                    out.push(site(format!("{}::{name}() allocates", q.text)));
                }
            }
        }
    }
    out
}

/// Runs the analysis over `files` from the given steady-state entry
/// specs, never crossing the warm-up boundary specs. Test-facing twin of
/// the [`run`] CLI path.
#[cfg(test)]
pub fn certify(
    files: Vec<SourceFile>,
    entry_specs: &[String],
    warm_up_specs: &[String],
) -> Result<report::Certificate, String> {
    report::certify(
        files,
        entry_specs,
        warm_up_specs,
        Rule::AllocReachability,
        &CERTIFIER.hooks,
    )
}

/// CLI entry: `cargo xtask allocs [options]`.
pub fn run(args: &[String]) -> ExitCode {
    report::run_certifier(&CERTIFIER, args)
}

// ---------------------------------------------------------------------------
// Self-tests: the classifier on planted fixtures, the warm-up/steady
// split, receiver-typed growth dispatch, H1 dedup, and the live
// workspace certificate.
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::Baseline;
    use crate::lint::workspace_root;
    use crate::report::{load_perimeter, Certificate, BASELINE_FILE};

    fn cert_at(rel: &str, src: &str, entries: &[&str], warm: &[&str]) -> Certificate {
        let e: Vec<String> = entries.iter().map(|s| s.to_string()).collect();
        let w: Vec<String> = warm.iter().map(|s| s.to_string()).collect();
        certify(vec![SourceFile::from_source(rel, src)], &e, &w).expect("fixture specs resolve")
    }

    fn cert(src: &str, entries: &[&str], warm: &[&str]) -> Certificate {
        cert_at("fixture.rs", src, entries, warm)
    }

    #[test]
    fn classifier_finds_each_allocation_class_with_exact_spans() {
        let src = "\
fn entry(xs: &[u32], n: usize) -> u32 {
    let a: Vec<u32> = Vec::with_capacity(n);
    let b = Box::new(n);
    let c = vec![0; n];
    let d = format!(\"{n}\");
    let e = xs.to_vec();
    let f = n.clone();
    let g: Vec<u32> = xs.iter().copied().collect::<Vec<u32>>();
    let h = String::from(\"x\");
    0
}
";
        let c = cert(src, &["entry"], &[]);
        let kinds: Vec<(&str, usize)> = c
            .summary
            .findings
            .iter()
            .map(|f| (f.message.split(';').next().expect("kind"), f.line))
            .collect();
        assert_eq!(
            kinds,
            vec![
                ("Vec::with_capacity() allocates", 2),
                ("Box::new() allocates", 3),
                ("vec! allocates", 4),
                ("format! allocates", 5),
                (".to_vec() allocates", 6),
                (
                    ".clone() allocates (conservative: receiver may be non-Copy)",
                    7
                ),
                (".collect() allocates", 8),
                ("String::from() allocates", 9),
            ]
        );
        let ctor = &c.summary.findings[0];
        assert_eq!(
            ctor.col,
            src.lines()
                .nth(1)
                .expect("l2")
                .find("with_capacity")
                .expect("pos")
                + 1
        );
    }

    #[test]
    fn growth_calls_dispatch_on_the_receiver_type() {
        let src = "\
struct Heap { entries: Vec<u64> }
impl Heap {
    pub fn push(&mut self, x: u64) {
        self.entries.push(x);
    }
}
fn entry(h: &mut Heap, out: &mut Vec<u32>) {
    h.push(1);
    out.push(2);
    mystery.push(3);
}
";
        let c = cert(src, &["entry"], &[]);
        let lines: Vec<usize> = c.summary.findings.iter().map(|f| f.line).collect();
        // h.push is charged to the certified Heap::push body (line 4);
        // out.push (Vec) and mystery.push (untyped) are call-site findings.
        assert_eq!(lines, vec![4, 9, 10]);
        assert!(c.summary.findings[0].message.contains("on `Vec`"));
        assert!(c.summary.findings[0].message.contains("entry → Heap::push"));
        assert!(c.summary.findings[2].message.contains("untyped receiver"));
    }

    #[test]
    fn warm_up_boundary_fences_constructors_and_first_fill() {
        let src = "\
impl Engine {
    pub fn serve(&mut self) {
        self.step();
    }
    fn step(&mut self) { let v = vec![1]; }
    pub fn new(n: usize) -> Self {
        let all = vec![0; n];
        build_index();
        Engine
    }
}
fn build_index() { let big: Vec<u32> = Vec::with_capacity(9); }
fn create_seeded() { let s = vec![7]; }
";
        let c = cert(src, &["Engine::serve"], &["new", "create_seeded"]);
        // Only step's vec! is a finding: new, everything behind it, and
        // create_seeded are fenced off.
        assert_eq!(c.summary.findings.len(), 1);
        assert_eq!(c.summary.findings[0].line, 5);
        let fenced: usize = c.warm_up.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(fenced, 2);
    }

    #[test]
    fn alloc_ok_justifications_silence_but_count() {
        let src = "\
fn entry(n: usize) -> Vec<u32> {
    // ALLOC-OK: result buffer, bounded by k ≤ n at every call site
    let mut out = Vec::with_capacity(n);
    out.extend(0..3u32);
    out
}
";
        let c = cert(src, &["entry"], &[]);
        assert_eq!(c.summary.findings.len(), 1, "only the extend fires");
        assert_eq!(c.summary.findings[0].line, 4);
        assert_eq!(
            c.summary.justified.get(Rule::AllocReachability.key()),
            Some(&1)
        );
    }

    #[test]
    fn h1_matched_sites_are_deduplicated_not_double_reported() {
        let src = "\
fn entry(xs: &[u32]) {
    for _ in xs {
        let v = xs.to_vec();
    }
    let w = xs.to_vec();
}
";
        // In H1's hot-loop scope: the in-loop site belongs to H1, the
        // out-of-loop one to this certifier.
        let c = cert_at("crates/core/src/query/fx.rs", src, &["entry"], &[]);
        assert_eq!(c.deduplicated, 1);
        assert_eq!(c.summary.findings.len(), 1);
        assert_eq!(c.summary.findings[0].line, 5);
    }

    #[test]
    fn missing_entry_and_warm_up_specs_are_hard_errors() {
        let files = || vec![SourceFile::from_source("fixture.rs", "fn real() {}\n")];
        let err = certify(files(), &["gone".to_string()], &[])
            .err()
            .expect("stale entry spec must be a hard error");
        assert!(err.contains("gone"));
        let err = certify(files(), &["real".to_string()], &["fenced_away".to_string()])
            .err()
            .expect("stale warm-up spec must be a hard error");
        assert!(err.contains("fenced_away") && err.contains("warm-up"));
    }

    // ---- the live workspace ------------------------------------------------

    #[test]
    fn live_workspace_certificate_holds() {
        let specs: Vec<String> = STEADY_ENTRIES.map(str::to_string).to_vec();
        let warm: Vec<String> = WARM_UP.map(str::to_string).to_vec();
        let cert = certify(load_perimeter(), &specs, &warm).expect("all specs resolve");
        assert!(
            cert.summary.files_scanned > 20,
            "suspiciously small perimeter"
        );
        for (spec, resolved) in &cert.entries {
            assert!(!resolved.is_empty(), "entry {spec} resolved to nothing");
        }
        let baseline =
            Baseline::load(&workspace_root().join(BASELINE_FILE)).expect("baseline parses");
        let key = Rule::AllocReachability.key();
        let alloc_entries: Vec<_> = baseline
            .entries
            .into_iter()
            .filter(|e| e.rule == key)
            .collect();
        let ratchet = Baseline {
            note: String::new(),
            entries: alloc_entries,
        }
        .apply(&cert.summary.findings);
        let report: Vec<String> = ratchet.new.iter().map(ToString::to_string).collect();
        assert!(
            ratchet.new.is_empty(),
            "unjustified steady-state allocation sites:\n{}",
            report.join("\n")
        );
        assert!(
            ratchet.stale.is_empty(),
            "stale alloc-reachability baseline entries"
        );
    }
}
