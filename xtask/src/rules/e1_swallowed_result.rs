//! E1 `no-swallowed-result` — no `let _ =` and no bare `.ok();` discarding
//! a `Result` outside tests, anywhere in the scanned workspace. A silently
//! dropped error on an I/O or parse path turns a recoverable failure into
//! wrong query answers; either handle the error, propagate it with `?`, or
//! justify the site.

use crate::rules::{record, scope, statement_around, tok, tok_is, Rule, Summary};
use crate::scope::SourceFile;

pub(crate) fn check(file: &SourceFile, summary: &mut Summary) {
    for k in 0..file.code.len() {
        if scope(file, k).in_test {
            continue;
        }
        let t = tok(file, k);
        // `let _ = …;` — the exact wildcard pattern (a named `_unused`
        // binding is a different identifier and intentional).
        if t.is_ident("let")
            && tok_is(file, k + 1, |n| n.is_ident("_"))
            && tok_is(file, k + 2, |n| n.is_punct("="))
        {
            record(
                file,
                t.line,
                t.col,
                Rule::NoSwallowedResult,
                "`let _ =` discards a Result — handle or propagate the error, or justify".into(),
                summary,
            );
        }
        // A bare `….ok();` statement: the Result is evaluated for nothing.
        if t.is_punct(".")
            && tok_is(file, k + 1, |n| n.is_ident("ok"))
            && tok_is(file, k + 2, |n| n.is_punct("("))
            && tok_is(file, k + 3, |n| n.is_punct(")"))
            && tok_is(file, k + 4, |n| n.is_punct(";"))
        {
            let (start, _) = statement_around(file, k);
            let bound = (start..k).any(|j| {
                let s = tok(file, j);
                s.is_ident("let") || s.is_ident("return") || s.is_punct("=")
            });
            if !bound {
                record(
                    file,
                    t.line,
                    t.col,
                    Rule::NoSwallowedResult,
                    "Result silently dropped via `.ok();` — handle the error or justify".into(),
                    summary,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::{run_rule, Rule};

    #[test]
    fn e1_triggers_on_let_underscore_and_bare_ok() {
        let src = "\
fn f(w: &mut W) {
    let _ = writeln!(w, \"x\");
    w.flush().ok();
}
";
        let summary = run_rule("crates/core/src/x.rs", src, Rule::NoSwallowedResult);
        assert_eq!(summary.count(Rule::NoSwallowedResult), 2);
        assert_eq!(summary.findings[0].line, 2);
        assert_eq!(summary.findings[0].col, 5);
        // The `.ok();` finding anchors on the dot before `ok`.
        assert_eq!(summary.findings[1].line, 3);
        assert_eq!(
            summary.findings[1].col,
            src.lines()
                .nth(2)
                .expect("line")
                .find(".ok()")
                .expect("pos")
                + 1
        );
    }

    #[test]
    fn e1_ignores_bound_ok_named_bindings_and_match_wildcards() {
        let src = "\
fn f(r: Result<u32, E>) -> Option<u32> {
    let v = r.ok();
    let _hint = side_effect();
    match v {
        Some(_) => v,
        _ => None,
    }
}
";
        assert_eq!(
            run_rule("crates/core/src/x.rs", src, Rule::NoSwallowedResult)
                .count(Rule::NoSwallowedResult),
            0
        );
    }

    #[test]
    fn e1_ignores_tests_and_honors_justifications() {
        let test_only = "\
#[cfg(test)]
mod tests {
    fn t(w: &mut W) { let _ = writeln!(w, \"x\"); w.flush().ok(); }
}
";
        assert_eq!(
            run_rule("crates/core/src/x.rs", test_only, Rule::NoSwallowedResult)
                .count(Rule::NoSwallowedResult),
            0
        );
        let justified = "\
fn f(w: &mut W) {
    // lint:allow(no-swallowed-result) — broken pipe on stdout is benign here
    w.flush().ok();
}
";
        let summary = run_rule("crates/core/src/x.rs", justified, Rule::NoSwallowedResult);
        assert_eq!(summary.count(Rule::NoSwallowedResult), 0);
        assert_eq!(summary.justified.get("no-swallowed-result"), Some(&1));
    }

    #[test]
    fn e1_scans_every_workspace_file() {
        let src = "fn f(w: &mut W) { w.flush().ok(); }\n";
        assert_eq!(
            run_rule("src/bin/tool.rs", src, Rule::NoSwallowedResult)
                .count(Rule::NoSwallowedResult),
            1
        );
    }
}
