//! L4 `paper-docs` — every `pub fn` in `crates/core/src/query/` carries a
//! doc comment citing the paper section it implements (`§`, `Algorithm`,
//! `Lemma`, `Theorem`, `Observation`, `Definition`, `Eq.` or `Fig.`),
//! keeping the query processors traceable to the source material.
//! `pub(crate)`/`pub(super)` functions are internal and exempt.

use crate::rules::{record, scope, tok, tok_is, Rule, Summary};
use crate::scope::SourceFile;

/// Markers accepted as a paper citation.
pub(crate) const CITATION_MARKERS: [&str; 8] = [
    "§",
    "Algorithm",
    "Lemma",
    "Theorem",
    "Observation",
    "Definition",
    "Eq.",
    "Fig.",
];

/// Qualifiers that may sit between `pub` and `fn`.
const FN_QUALIFIERS: [&str; 4] = ["async", "const", "unsafe", "extern"];

pub(crate) fn check(file: &SourceFile, summary: &mut Summary) {
    if !file.rel.starts_with("crates/core/src/query/") {
        return;
    }
    for k in 0..file.code.len() {
        let t = tok(file, k);
        if !t.is_ident("pub") || scope(file, k).in_test {
            continue;
        }
        // `pub(crate)` / `pub(super)` are internal: exempt.
        if tok_is(file, k + 1, |n| n.is_punct("(")) {
            continue;
        }
        // Walk `pub [async|const|unsafe|extern ["C"]] fn`.
        let mut j = k + 1;
        while tok_is(file, j, |n| {
            FN_QUALIFIERS.contains(&n.text.as_str()) || n.text.starts_with('"')
        }) {
            j += 1;
        }
        if !tok_is(file, j, |n| n.is_ident("fn")) {
            continue;
        }
        let doc = file.doc_block_above(t.line);
        let msg = if doc.is_empty() {
            "undocumented pub fn in the query processor — cite the paper section it implements"
        } else if !CITATION_MARKERS.iter().any(|m| doc.contains(m)) {
            "query-processor doc comment cites no paper section (§/Algorithm/Lemma/…)"
        } else {
            continue;
        };
        record(file, t.line, t.col, Rule::PaperDocs, msg.into(), summary);
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::{run_rule, Rule};

    #[test]
    fn l4_triggers_on_undocumented_and_citation_free_pub_fns() {
        let undocumented = "pub fn naked() {}\n";
        assert_eq!(
            run_rule("crates/core/src/query/x.rs", undocumented, Rule::PaperDocs)
                .count(Rule::PaperDocs),
            1
        );
        let uncited = "/// Does a thing, no citation.\npub fn vague() {}\n";
        assert_eq!(
            run_rule("crates/core/src/query/x.rs", uncited, Rule::PaperDocs).count(Rule::PaperDocs),
            1
        );
    }

    #[test]
    fn l4_accepts_cited_docs_and_ignores_internal_fns() {
        let cited = "/// Implements Algorithm 2 (§4.2).\n#[inline]\npub fn good() {}\n";
        assert_eq!(
            run_rule("crates/core/src/query/x.rs", cited, Rule::PaperDocs).count(Rule::PaperDocs),
            0
        );
        let internal = "pub(crate) fn helper() {}\nfn private() {}\n";
        assert_eq!(
            run_rule("crates/core/src/query/x.rs", internal, Rule::PaperDocs)
                .count(Rule::PaperDocs),
            0
        );
        let outside = "pub fn naked() {}\n";
        assert_eq!(
            run_rule("crates/core/src/heap.rs", outside, Rule::PaperDocs).count(Rule::PaperDocs),
            0
        );
    }

    #[test]
    fn l4_sees_async_fns_and_non_fn_pub_items() {
        let async_fn = "pub async fn naked() {}\n";
        assert_eq!(
            run_rule("crates/core/src/query/x.rs", async_fn, Rule::PaperDocs)
                .count(Rule::PaperDocs),
            1
        );
        let not_a_fn = "pub struct S;\npub use other::thing;\n";
        assert_eq!(
            run_rule("crates/core/src/query/x.rs", not_a_fn, Rule::PaperDocs)
                .count(Rule::PaperDocs),
            0
        );
    }
}
