//! K1 `no-binary-heap` — no `std::collections::BinaryHeap` construction
//! in the distance-module crates now that `kspin_graph::DaryHeap` exists.
//!
//! Every search frontier in `crates/graph`, `crates/alt`, `crates/nvd`,
//! and `crates/core` runs on the indexed d-ary kernel (true decrease-key,
//! zero stale pops, O(1) epoch reset). A `BinaryHeap` reintroduced there
//! means lazy deletion crept back in: stale duplicates, per-query
//! allocation, and `stale_skipped` counters that are no longer
//! structurally zero. Bounded *result* heaps (e.g. the k-best max-heap a
//! top-k query keeps) are a legitimate use and are ratcheted in the
//! baseline with per-site reasons rather than exempted wholesale.

use crate::rules::{record, scope, tok, tok_is, Rule, Summary};
use crate::scope::SourceFile;

/// Crates whose hot paths must run on the indexed d-ary kernel.
const SCOPED: [&str; 4] = [
    "crates/graph/src/",
    "crates/alt/src/",
    "crates/nvd/src/",
    "crates/core/src/",
];

pub(crate) fn check(file: &SourceFile, summary: &mut Summary) {
    if !SCOPED.iter().any(|p| file.rel.starts_with(p)) {
        return;
    }
    for k in 0..file.code.len() {
        let t = tok(file, k);
        if scope(file, k).in_test {
            continue;
        }
        // `BinaryHeap::new(..)` / `BinaryHeap::with_capacity(..)`,
        // including the turbofish spelling `BinaryHeap::<T>::new(..)` —
        // the construction sites; a type mention alone (docs, signatures
        // of reference kernels) does not build a frontier.
        if t.is_ident("BinaryHeap") && is_construction(file, k + 1) {
            record(
                file,
                t.line,
                t.col,
                Rule::NoBinaryHeap,
                "BinaryHeap constructed in a d-ary-kernel crate (use kspin_graph::DaryHeap)".into(),
                summary,
            );
        }
    }
}

/// Whether the tokens at `j` (just past a `BinaryHeap` ident) spell a
/// construction: `::new`, `::with_capacity`, or a turbofish
/// `::<..>::new` / `::<..>::with_capacity`.
fn is_construction(file: &SourceFile, mut j: usize) -> bool {
    if !tok_is(file, j, |n| n.is_punct("::")) {
        return false;
    }
    j += 1;
    if tok_is(file, j, |n| n.is_punct("<")) {
        // Skip the balanced generic segment; the lexer munches `>>` as
        // one token, so it closes two levels. Bounded walk: a turbofish
        // longer than 64 tokens is not something this codebase writes.
        let mut depth = 0i32;
        let limit = (j + 64).min(file.code.len());
        while j < limit {
            let t = tok(file, j);
            if t.is_punct("<") {
                depth += 1;
            } else if t.is_punct("<<") {
                depth += 2;
            } else if t.is_punct(">") {
                depth -= 1;
            } else if t.is_punct(">>") {
                depth -= 2;
            }
            j += 1;
            if depth <= 0 {
                break;
            }
        }
        if depth != 0 || !tok_is(file, j, |n| n.is_punct("::")) {
            return false;
        }
        j += 1;
    }
    tok_is(file, j, |n| {
        n.is_ident("new") || n.is_ident("with_capacity")
    })
}

#[cfg(test)]
mod tests {
    use crate::rules::{run_rule, Rule};

    #[test]
    fn k1_triggers_on_construction_in_scoped_crates() {
        let src = "fn f() { let h = std::collections::BinaryHeap::new(); \
                   let g: BinaryHeap<u32> = BinaryHeap::with_capacity(8); }\n";
        for rel in [
            "crates/graph/src/x.rs",
            "crates/alt/src/x.rs",
            "crates/nvd/src/x.rs",
            "crates/core/src/query/x.rs",
        ] {
            assert_eq!(
                run_rule(rel, src, Rule::NoBinaryHeap).count(Rule::NoBinaryHeap),
                2,
                "{rel}"
            );
        }
    }

    #[test]
    fn k1_sees_through_turbofish_construction() {
        // `Vec<Vec<u32>>` makes the closer lex as `>>` (two levels).
        let src = "fn f() { let h = std::collections::BinaryHeap::<Vec<Vec<u32>>>::new(); \
                   let g = BinaryHeap::<u8>::with_capacity(4); }\n";
        assert_eq!(
            run_rule("crates/core/src/x.rs", src, Rule::NoBinaryHeap).count(Rule::NoBinaryHeap),
            2
        );
    }

    #[test]
    fn k1_ignores_type_mentions_tests_and_unscoped_crates() {
        // A type in a signature is not a construction.
        let sig_only = "fn f(h: &BinaryHeap<u32>) -> usize { h.len() }\n";
        assert_eq!(
            run_rule("crates/core/src/x.rs", sig_only, Rule::NoBinaryHeap)
                .count(Rule::NoBinaryHeap),
            0
        );
        // Tests may build reference kernels freely.
        let test_only = "#[cfg(test)]\nmod tests {\n    fn t() { let _ = BinaryHeap::new(); }\n}\n";
        assert_eq!(
            run_rule("crates/graph/src/x.rs", test_only, Rule::NoBinaryHeap)
                .count(Rule::NoBinaryHeap),
            0
        );
        // Crates outside the d-ary port (gtree, ch, benches) are not scoped.
        let src = "fn f() { let _ = BinaryHeap::new(); }\n";
        for rel in [
            "crates/gtree/src/x.rs",
            "crates/ch/src/x.rs",
            "crates/bench/benches/x.rs",
        ] {
            assert_eq!(
                run_rule(rel, src, Rule::NoBinaryHeap).count(Rule::NoBinaryHeap),
                0,
                "{rel}"
            );
        }
    }
}
