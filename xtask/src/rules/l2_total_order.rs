//! L2 `total-order-weights` — no `partial_cmp` and no raw-`f64` binary
//! heaps anywhere outside `crates/graph/src/weight.rs`. Result heaps order
//! Eq. 1 scores; a NaN under `partial_cmp` would silently corrupt heap
//! order, so `OrderedWeight` (`f64::total_cmp`) is the one sanctioned
//! float-ordering site.

use crate::rules::{record, scope, tok, tok_is, Rule, Summary};
use crate::scope::SourceFile;

/// The single sanctioned float-ordering site.
const SANCTIONED: &str = "crates/graph/src/weight.rs";

pub(crate) fn check(file: &SourceFile, summary: &mut Summary) {
    if file.rel == SANCTIONED {
        return;
    }
    for k in 0..file.code.len() {
        let t = tok(file, k);
        if scope(file, k).in_test {
            continue;
        }
        if t.is_ident("partial_cmp") {
            record(
                file,
                t.line,
                t.col,
                Rule::TotalOrderWeights,
                "partial_cmp outside crates/graph/src/weight.rs — order scores through OrderedWeight"
                    .into(),
                summary,
            );
        }
        // `BinaryHeap<f64…>` or `BinaryHeap<(f64…` — a raw-f64 heap type.
        if t.is_ident("BinaryHeap") && tok_is(file, k + 1, |n| n.is_punct("<")) {
            let inner = if tok_is(file, k + 2, |n| n.is_punct("(")) {
                k + 3
            } else {
                k + 2
            };
            if tok_is(file, inner, |n| n.is_ident("f64")) {
                record(
                    file,
                    t.line,
                    t.col,
                    Rule::TotalOrderWeights,
                    "raw f64 binary heap — wrap scores in OrderedWeight".into(),
                    summary,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::{run_rule, Rule};

    #[test]
    fn l2_triggers_on_partial_cmp_and_raw_f64_heaps() {
        let src = "fn f() { a.partial_cmp(&b); }\nfn g() -> BinaryHeap<(f64, u32)> { BinaryHeap::new() }\n";
        let summary = run_rule("crates/core/src/x.rs", src, Rule::TotalOrderWeights);
        assert_eq!(summary.count(Rule::TotalOrderWeights), 2);
    }

    #[test]
    fn l2_exempts_the_sanctioned_weight_module() {
        let src = "fn f() { a.partial_cmp(&b); }\n";
        let summary = run_rule("crates/graph/src/weight.rs", src, Rule::TotalOrderWeights);
        assert_eq!(summary.count(Rule::TotalOrderWeights), 0);
    }

    #[test]
    fn l2_ignores_ordered_heaps_and_tests() {
        let ok = "fn g() -> BinaryHeap<(OrderedWeight, u32)> { BinaryHeap::new() }\n";
        assert_eq!(
            run_rule("crates/core/src/x.rs", ok, Rule::TotalOrderWeights)
                .count(Rule::TotalOrderWeights),
            0
        );
        let test_only = "#[cfg(test)]\nmod tests {\n    fn t() { a.partial_cmp(&b); }\n}\n";
        assert_eq!(
            run_rule("crates/core/src/x.rs", test_only, Rule::TotalOrderWeights)
                .count(Rule::TotalOrderWeights),
            0
        );
    }
}
