//! L3 `sanctioned-concurrency` — no `thread::spawn` and no bare `Mutex`
//! outside the sanctioned concurrency sites. Ad-hoc threading elsewhere
//! needs a justification.

use crate::rules::{record, scope, tok, tok_is, Rule, Summary};
use crate::scope::SourceFile;

/// The sanctioned concurrency sites:
///
/// * `index.rs` — the crossbeam scope of the parallel keyword build
///   (Observation 3),
/// * `cache.rs` — the sharded `Mutex` LRU of the cross-query heap-seed
///   cache (serving layer; shards are the whole design, a lock-free map
///   would be a dependency).
///
/// The serving layer's `BatchExecutor` is deliberately *not* listed: it
/// uses only crossbeam scoped threads and atomics, which this rule never
/// flags.
const SANCTIONED: [&str; 2] = ["crates/core/src/index.rs", "crates/core/src/cache.rs"];

pub(crate) fn check(file: &SourceFile, summary: &mut Summary) {
    if SANCTIONED.contains(&file.rel.as_str()) {
        return;
    }
    for k in 0..file.code.len() {
        let t = tok(file, k);
        if scope(file, k).in_test {
            continue;
        }
        if t.is_ident("thread")
            && tok_is(file, k + 1, |n| n.is_punct("::"))
            && tok_is(file, k + 2, |n| n.is_ident("spawn"))
        {
            record(
                file,
                t.line,
                t.col,
                Rule::SanctionedConcurrency,
                "thread::spawn outside the sanctioned index-build scope".into(),
                summary,
            );
        }
        // `Mutex<..>` (a declared type) or `Mutex::new(..)` (a value).
        let mutex_use = t.is_ident("Mutex")
            && (tok_is(file, k + 1, |n| n.is_punct("<"))
                || (tok_is(file, k + 1, |n| n.is_punct("::"))
                    && tok_is(file, k + 2, |n| n.is_ident("new"))));
        if mutex_use {
            record(
                file,
                t.line,
                t.col,
                Rule::SanctionedConcurrency,
                "bare Mutex outside the sanctioned index-build scope".into(),
                summary,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::{run_rule, Rule};

    #[test]
    fn l3_triggers_on_spawn_and_mutex() {
        let src = "fn f() { std::thread::spawn(|| {}); }\nstatic M: Mutex<u32> = Mutex::new(0);\n";
        let summary = run_rule("crates/gtree/src/x.rs", src, Rule::SanctionedConcurrency);
        // Three sites: the spawn, the Mutex type, and Mutex::new.
        assert_eq!(summary.count(Rule::SanctionedConcurrency), 3);
    }

    #[test]
    fn l3_exempts_the_sanctioned_index_scope_and_tests() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(
            run_rule("crates/core/src/index.rs", src, Rule::SanctionedConcurrency)
                .count(Rule::SanctionedConcurrency),
            0
        );
        let cache_src = "struct S { shards: Vec<Mutex<u32>> }\n";
        assert_eq!(
            run_rule(
                "crates/core/src/cache.rs",
                cache_src,
                Rule::SanctionedConcurrency
            )
            .count(Rule::SanctionedConcurrency),
            0
        );
        let test_only = "#[cfg(test)]\nmod tests {\n    fn t() { std::thread::spawn(|| {}); }\n}\n";
        assert_eq!(
            run_rule(
                "crates/core/src/x.rs",
                test_only,
                Rule::SanctionedConcurrency
            )
            .count(Rule::SanctionedConcurrency),
            0
        );
    }
}
