//! A1 `checked-weight-arithmetic` — `+` / `+=` on weight-like operands in
//! query code (`crates/core/src/query/`) must go through the checked
//! helpers of `crates/graph/src/weight.rs` (`weight_add`, the saturating
//! methods, or `OrderedWeight`). `Weight` is an unsigned integer with a
//! large `INFINITY` sentinel; a raw `d + w` can wrap past the sentinel and
//! invert Property 1's ordering, which is exactly the silent corruption
//! the lint wall exists to exclude.

use crate::lex::TokenKind;
use crate::rules::{record, scope, statement_around, tok, Rule, Summary};
use crate::scope::SourceFile;

/// Identifier segments (split on `_`) that mark an operand as weight-like.
const WEIGHTY: [&str; 18] = [
    "d", "dk", "w", "wt", "dist", "distance", "weight", "weights", "lb", "lbs", "bound", "bounds",
    "minkey", "key", "keys", "cost", "costs", "lower",
];

/// Segments that mark an operand as a counter/bookkeeping value even when
/// another segment looks weighty (`lb_computations`, `dist_count`, …).
const EXCLUDED: [&str; 10] = [
    "computations",
    "extractions",
    "candidates",
    "computed",
    "count",
    "counts",
    "stats",
    "len",
    "idx",
    "index",
];

/// Calls that make a statement sanctioned: the addition is already checked
/// (or is part of asserting the checked form).
const SANCTIONED_CALLS: [&str; 4] = [
    "weight_add",
    "saturating_add",
    "checked_add",
    "OrderedWeight",
];

pub(crate) fn check(file: &SourceFile, summary: &mut Summary) {
    if !file.rel.starts_with("crates/core/src/query/") {
        return;
    }
    for k in 0..file.code.len() {
        let t = tok(file, k);
        if !(t.is_punct("+") || t.is_punct("+=")) || scope(file, k).in_test {
            continue;
        }
        let mut idents = operand_idents_left(file, k);
        idents.extend(operand_idents_right(file, k));
        let Some(weighty) = classify(&idents) else {
            continue;
        };
        let (start, end) = statement_around(file, k);
        let sanctioned =
            (start..end).any(|j| SANCTIONED_CALLS.contains(&tok(file, j).text.as_str()));
        if sanctioned {
            continue;
        }
        record(
            file,
            t.line,
            t.col,
            Rule::CheckedWeightArithmetic,
            format!(
                "unchecked `{}` on weight-like operand `{weighty}` — route through \
                 weight_add/saturating_add/OrderedWeight (crates/graph/src/weight.rs) or justify",
                t.text
            ),
            summary,
        );
    }
}

/// If the operand identifiers look weight-like (and none are excluded
/// bookkeeping), returns the identifier that matched.
fn classify(idents: &[String]) -> Option<String> {
    let mut weighty: Option<String> = None;
    for id in idents {
        // Only plain lowercase value identifiers participate: type names
        // (`Weight`, `OrderedWeight`) and constants (`INFINITY`) are
        // declarations/sentinels, not hot-path sums.
        if !id
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        {
            continue;
        }
        for seg in id.split('_').filter(|s| !s.is_empty()) {
            if EXCLUDED.contains(&seg) {
                return None;
            }
            if weighty.is_none() && WEIGHTY.contains(&seg) {
                weighty = Some(id.clone());
            }
        }
    }
    weighty
}

/// Identifiers of the operand expression left of code token `k`, walking
/// back over `a.b`, `a::b`, calls and index groups.
fn operand_idents_left(file: &SourceFile, k: usize) -> Vec<String> {
    let mut idents = Vec::new();
    let mut j = k;
    while j > 0 {
        j -= 1;
        let t = tok(file, j);
        match t.kind {
            TokenKind::Punct if t.text == ")" || t.text == "]" => {
                let Some(open) = matching_open(file, j) else {
                    break;
                };
                if open == 0 {
                    break;
                }
                j = open;
            }
            TokenKind::Ident => {
                idents.push(t.text.clone());
                if j >= 1 {
                    let p = tok(file, j - 1);
                    if p.is_punct(".") || p.is_punct("::") {
                        j -= 1;
                        continue;
                    }
                }
                break;
            }
            TokenKind::NumLit => break,
            _ => break,
        }
    }
    idents
}

/// Identifiers of the operand expression right of code token `k`, walking
/// forward over `a.b`, `a::b`, calls and index groups.
fn operand_idents_right(file: &SourceFile, k: usize) -> Vec<String> {
    let mut idents = Vec::new();
    let mut j = k + 1;
    while j < file.code.len() {
        let t = tok(file, j);
        match t.kind {
            TokenKind::Ident => {
                idents.push(t.text.clone());
                j += 1;
            }
            TokenKind::NumLit => {
                j += 1;
            }
            TokenKind::Punct if t.text == "(" || t.text == "[" => {
                let Some(close) = matching_close(file, j) else {
                    break;
                };
                j = close + 1;
            }
            TokenKind::Punct if t.text == "." || t.text == "::" => {
                j += 1;
            }
            _ => break,
        }
    }
    idents
}

/// Index of the `(`/`[` matching the closer at `j`.
fn matching_open(file: &SourceFile, j: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut i = j + 1;
    while i > 0 {
        i -= 1;
        match tok(file, i).text.as_str() {
            ")" | "]" => depth += 1,
            "(" | "[" => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Index of the `)`/`]` matching the opener at `j`.
fn matching_close(file: &SourceFile, j: usize) -> Option<usize> {
    let mut depth = 0i32;
    for i in j..file.code.len() {
        match tok(file, i).text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use crate::rules::{run_rule, Rule};

    #[test]
    fn a1_triggers_on_raw_weight_sums() {
        let src = "\
fn f(d: Weight, w: Weight) -> Weight {
    let nd = d + w;
    nd
}
";
        let summary = run_rule(
            "crates/core/src/query/x.rs",
            src,
            Rule::CheckedWeightArithmetic,
        );
        assert_eq!(summary.count(Rule::CheckedWeightArithmetic), 1);
        let f = &summary.findings[0];
        assert_eq!((f.line, f.col), (2, 16));
        assert!(f.message.contains('d') || f.message.contains('w'));
    }

    #[test]
    fn a1_triggers_on_compound_assignment_and_paths() {
        let src = "\
fn f(&mut self) {
    self.min_key += edge_weight;
    total_dist = total_dist + self.dist(v);
}
";
        let summary = run_rule(
            "crates/core/src/query/x.rs",
            src,
            Rule::CheckedWeightArithmetic,
        );
        assert_eq!(summary.count(Rule::CheckedWeightArithmetic), 2);
    }

    #[test]
    fn a1_ignores_counters_indices_and_checked_forms() {
        let src = "\
fn f(&mut self) {
    self.stats.lb_computations += 1;
    self.stats.dist_computations += extra;
    i += 1;
    let j = idx + 1;
    let nd = weight_add(d, w);
    let s = d.saturating_add(w);
}
";
        assert_eq!(
            run_rule(
                "crates/core/src/query/x.rs",
                src,
                Rule::CheckedWeightArithmetic
            )
            .count(Rule::CheckedWeightArithmetic),
            0
        );
    }

    #[test]
    fn a1_ignores_trait_bounds_and_other_files() {
        let bounds = "fn f<T: Clone + Send>(x: T) where T: Ord + Eq {}\n";
        assert_eq!(
            run_rule(
                "crates/core/src/query/x.rs",
                bounds,
                Rule::CheckedWeightArithmetic
            )
            .count(Rule::CheckedWeightArithmetic),
            0
        );
        let elsewhere = "fn f(d: Weight, w: Weight) -> Weight { d + w }\n";
        assert_eq!(
            run_rule(
                "crates/graph/src/dijkstra.rs",
                elsewhere,
                Rule::CheckedWeightArithmetic
            )
            .count(Rule::CheckedWeightArithmetic),
            0
        );
    }

    #[test]
    fn a1_ignores_tests_and_honors_justifications() {
        let test_only = "\
#[cfg(test)]
mod tests {
    fn t(d: Weight, w: Weight) { let _x = d + w; }
}
";
        assert_eq!(
            run_rule(
                "crates/core/src/query/x.rs",
                test_only,
                Rule::CheckedWeightArithmetic
            )
            .count(Rule::CheckedWeightArithmetic),
            0
        );
        let justified = "\
fn f(d: Weight, w: Weight) -> Weight {
    // lint:allow(checked-weight-arithmetic) — both operands < INFINITY/2 by construction
    d + w
}
";
        let summary = run_rule(
            "crates/core/src/query/x.rs",
            justified,
            Rule::CheckedWeightArithmetic,
        );
        assert_eq!(summary.count(Rule::CheckedWeightArithmetic), 0);
        assert_eq!(summary.justified.get("checked-weight-arithmetic"), Some(&1));
    }
}
