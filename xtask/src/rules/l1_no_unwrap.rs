//! L1 `no-unwrap` — no `.unwrap()` / `.expect(..)` in non-test code of
//! `crates/core` and `crates/nvd` (the query hot paths). Algorithms 1–4
//! must degrade by returning empty results or propagating worker panics,
//! never by panicking on a `None` the paper's invariants were supposed to
//! exclude.

use crate::lex::TokenKind;
use crate::rules::{record, scope, tok, tok_is, Rule, Summary};
use crate::scope::SourceFile;

fn in_scope(rel: &str) -> bool {
    rel.starts_with("crates/core/src/") || rel.starts_with("crates/nvd/src/")
}

pub(crate) fn check(file: &SourceFile, summary: &mut Summary) {
    if !in_scope(&file.rel) {
        return;
    }
    for k in 0..file.code.len() {
        let t = tok(file, k);
        if t.kind != TokenKind::Ident || (t.text != "unwrap" && t.text != "expect") {
            continue;
        }
        if scope(file, k).in_test {
            continue;
        }
        // `.unwrap(` exactly: a leading dot and an immediate call, so
        // `unwrap_or(..)` (a different identifier token) never matches.
        let method_call =
            k > 0 && tok(file, k - 1).is_punct(".") && tok_is(file, k + 1, |n| n.is_punct("("));
        if method_call {
            let what = if t.text == "unwrap" {
                ".unwrap()"
            } else {
                ".expect(..)"
            };
            record(
                file,
                t.line,
                t.col,
                Rule::NoUnwrap,
                format!("{what} in hot-path code — handle the None/Err case or justify"),
                summary,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::{run_rule, Rule};

    #[test]
    fn l1_triggers_on_unwrap_and_expect() {
        let src = "fn f() { a.unwrap(); b.expect(\"boom\"); }\n";
        let summary = run_rule("crates/core/src/x.rs", src, Rule::NoUnwrap);
        assert_eq!(summary.count(Rule::NoUnwrap), 2);
        assert_eq!(summary.findings[0].line, 1);
        assert_eq!(
            summary.findings[0].col,
            src.find("unwrap").expect("pos") + 1
        );
    }

    #[test]
    fn l1_ignores_unwrap_or_and_tests_and_other_crates() {
        let ok = "fn f() { a.unwrap_or(0); b.unwrap_or_else(|| 1); c.unwrap_or_default(); }\n";
        assert_eq!(
            run_rule("crates/core/src/x.rs", ok, Rule::NoUnwrap).count(Rule::NoUnwrap),
            0
        );
        let test_only = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert_eq!(
            run_rule("crates/core/src/x.rs", test_only, Rule::NoUnwrap).count(Rule::NoUnwrap),
            0
        );
        let other_crate = "fn f() { a.unwrap(); }\n";
        assert_eq!(
            run_rule("crates/graph/src/x.rs", other_crate, Rule::NoUnwrap).count(Rule::NoUnwrap),
            0
        );
    }

    #[test]
    fn l1_ignores_strings_and_comments() {
        let src = "fn f() { let s = \".unwrap()\"; } // a.unwrap() in comment\n";
        assert_eq!(
            run_rule("crates/core/src/x.rs", src, Rule::NoUnwrap).count(Rule::NoUnwrap),
            0
        );
    }

    #[test]
    fn l1_justification_is_honored() {
        let src = "fn f() {\n    // lint:allow(no-unwrap) — invariant: list non-empty\n    x.unwrap();\n}\n";
        let summary = run_rule("crates/core/src/x.rs", src, Rule::NoUnwrap);
        assert_eq!(summary.count(Rule::NoUnwrap), 0);
        assert_eq!(summary.justified.get("no-unwrap"), Some(&1));
    }
}
