//! C1: no bare `as` numeric casts in decode-classified files.
//!
//! The decode half of the snapshot layer turns untrusted bytes into
//! offsets, counts and capacities. A bare `x as u32` silently truncates
//! and `x as usize` silently widens-or-truncates depending on target —
//! exactly the conversions an adversarial file exploits. Inside the
//! decode-classified files every numeric conversion must go through
//! `try_from`/`From` (fail-closed) or carry a
//! `lint:allow(no-as-cast-in-decode)` justification stating why the cast
//! is lossless.
//!
//! Scope refinements, both deliberate:
//! * `crates/snapshot/src/writer.rs` is exempt — it is the encode half
//!   of the crate and consumes trusted in-memory structures only.
//! * Functions whose name starts with `encode` are exempt for the same
//!   reason: the decode direction is where a bare cast can launder an
//!   adversarial value.

use crate::lex::TokenKind;
use crate::rules::{record, scope, tok, tok_is, Rule, Summary};
use crate::scope::SourceFile;

/// Files where decoded (untrusted) integers flow.
const SCOPED_PREFIXES: [&str; 1] = ["crates/snapshot/src/"];
const SCOPED_FILES: [&str; 2] = ["crates/core/src/snapshot.rs", "src/snapshot.rs"];
/// The encode half of `crates/snapshot`; never sees untrusted bytes.
const EXEMPT_FILES: [&str; 1] = ["crates/snapshot/src/writer.rs"];

/// Numeric target types a bare `as` cast can truncate into.
const NUM_TYPES: [&str; 14] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

fn in_scope(rel: &str) -> bool {
    if EXEMPT_FILES.contains(&rel) {
        return false;
    }
    SCOPED_PREFIXES.iter().any(|p| rel.starts_with(p)) || SCOPED_FILES.contains(&rel)
}

/// Scans one file for bare `as` numeric casts outside tests and encode
/// functions.
pub fn check(file: &SourceFile, summary: &mut Summary) {
    if !in_scope(&file.rel) {
        return;
    }
    for k in 0..file.code.len() {
        let t = tok(file, k);
        if !(t.kind == TokenKind::Ident && t.text == "as") {
            continue;
        }
        let sc = scope(file, k);
        if sc.in_test {
            continue;
        }
        if sc
            .fn_name
            .as_deref()
            .is_some_and(|f| f.starts_with("encode"))
        {
            continue;
        }
        let Some(target) = file.code.get(k + 1).map(|&i| file.tokens[i].text.clone()) else {
            continue;
        };
        if !NUM_TYPES.contains(&target.as_str()) {
            continue;
        }
        // `use x as y` / `impl Trait as` renames never have a numeric
        // type on the right, so reaching here means a real cast.
        if tok_is(file, k + 1, |n| n.kind != TokenKind::Ident) {
            continue;
        }
        record(
            file,
            t.line,
            t.col,
            Rule::NoAsCastInDecode,
            format!(
                "bare `as {target}` cast in decode-classified file (use try_from/From or justify)"
            ),
            summary,
        );
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::{run_rule, Rule};

    #[test]
    fn casts_in_decode_files_are_flagged_with_positions() {
        let src = "\
fn decode(x: u64) -> usize {
    let n = x as usize;
    n
}
";
        let s = run_rule("crates/snapshot/src/reader.rs", src, Rule::NoAsCastInDecode);
        assert_eq!(s.findings.len(), 1);
        assert_eq!((s.findings[0].line, s.findings[0].col), (2, 15));
        assert!(s.findings[0].message.contains("as usize"));
    }

    #[test]
    fn encode_fns_tests_justifications_and_foreign_files_are_exempt() {
        let src = "\
fn encode_graph(x: usize) -> u64 {
    x as u64
}
fn decode_ok(x: u64) -> usize {
    // lint:allow(no-as-cast-in-decode) — u32-bounded by the len check above
    x as usize
}
#[cfg(test)]
mod tests {
    fn t(x: u64) -> usize { x as usize }
}
";
        let s = run_rule("crates/core/src/snapshot.rs", src, Rule::NoAsCastInDecode);
        assert_eq!(s.findings.len(), 0, "{:?}", s.findings);
        assert_eq!(s.justified_count(Rule::NoAsCastInDecode), 1);
        let other = run_rule(
            "crates/core/src/query/bknn.rs",
            "fn f(x: u64) { x as usize; }",
            Rule::NoAsCastInDecode,
        );
        assert_eq!(other.findings.len(), 0, "out-of-scope file");
        let writer = run_rule(
            "crates/snapshot/src/writer.rs",
            "fn put(x: usize) { x as u64; }",
            Rule::NoAsCastInDecode,
        );
        assert_eq!(writer.findings.len(), 0, "writer.rs is the encode half");
    }

    #[test]
    fn non_numeric_as_uses_are_not_casts() {
        let src = "\
use std::io::Error as IoError;
fn f(v: &dyn std::any::Any) -> u32 {
    let _ = v as &dyn std::any::Any;
    <u32 as Default>::default()
}
";
        let s = run_rule("crates/snapshot/src/format.rs", src, Rule::NoAsCastInDecode);
        assert_eq!(s.findings.len(), 0, "{:?}", s.findings);
    }
}
