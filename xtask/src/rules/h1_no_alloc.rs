//! H1 `no-alloc-in-hot-loop` — no `Vec::new` / `vec!` / `.to_vec()` /
//! `.clone()` / `.collect()` / `format!` / `Box::new` inside loop bodies
//! of non-test code on the paper's hot paths. The file scope is derived
//! from the steady-state serving entry-point set
//! ([`crate::entrypoints::hot_loop_scope`]): the Algorithm 1/3 query
//! loops, inverted-heap extraction, the batch executor, the seed cache,
//! the d-ary heap kernel and VN3 kNN. Per-iteration allocation is
//! exactly the defect class the kNN experimentation literature blames
//! for order-of-magnitude slowdowns; hoist a scratch buffer out of the
//! loop or justify the site. `cargo xtask allocs` deduplicates against
//! these token-level spans so a site is reported by exactly one pass.

use crate::entrypoints::hot_loop_scope;
use crate::rules::{record, scope, tok, tok_is, Rule, Summary};
use crate::scope::SourceFile;

/// Method calls that allocate (`recv.to_vec()`, `.clone()`, `.collect()`).
const ALLOC_METHODS: [&str; 3] = ["to_vec", "clone", "collect"];

/// `Type::new` constructors that allocate.
const ALLOC_CTORS: [&str; 2] = ["Vec", "Box"];

/// Macros that allocate (`format!`, `vec!`).
const ALLOC_MACROS: [&str; 2] = ["format", "vec"];

/// Every token-level H1 match in `file` *before* justification handling:
/// `(line, col, message)`. Shared with `cargo xtask allocs`, which drops
/// its own classifier sites at these exact spans — H1 is the front line
/// for in-loop allocation, whether reported or `lint:allow`ed.
pub(crate) fn matches(file: &SourceFile) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    if !hot_loop_scope(&file.rel) {
        return out;
    }
    for k in 0..file.code.len() {
        let sc = scope(file, k);
        if sc.in_test || sc.loop_depth == 0 {
            continue;
        }
        let t = tok(file, k);
        let what = if t.is_ident("new")
            && k >= 2
            && tok(file, k - 1).is_punct("::")
            && ALLOC_CTORS.contains(&tok(file, k - 2).text.as_str())
        {
            format!("{}::new", tok(file, k - 2).text)
        } else if ALLOC_METHODS.contains(&t.text.as_str())
            && k > 0
            && tok(file, k - 1).is_punct(".")
            && tok_is(file, k + 1, |n| n.is_punct("(") || n.is_punct("::"))
        {
            format!(".{}()", t.text)
        } else if ALLOC_MACROS.contains(&t.text.as_str())
            && tok_is(file, k + 1, |n| n.is_punct("!"))
        {
            format!("{}!", t.text)
        } else {
            continue;
        };
        let fn_name = sc
            .fn_name
            .as_deref()
            .or(sc.item_name.as_deref())
            .unwrap_or("?");
        out.push((
            t.line,
            t.col,
            format!(
                "allocation ({what}) inside a loop (depth {}) of `{fn_name}` — \
                 hoist a reused scratch buffer out of the hot loop or justify",
                sc.loop_depth
            ),
        ));
    }
    out
}

pub(crate) fn check(file: &SourceFile, summary: &mut Summary) {
    for (line, col, message) in matches(file) {
        record(file, line, col, Rule::NoAllocInHotLoop, message, summary);
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::{run_rule, Rule};

    #[test]
    fn h1_triggers_on_allocations_inside_loops() {
        let src = "\
fn hot(xs: &[u32]) {
    for x in xs {
        let v: Vec<u32> = Vec::new();
        let w = xs.to_vec();
        let c = x.clone();
        let s = format!(\"{x}\");
        let b = Box::new(x);
        let m = vec![0; 4];
        let g: Vec<u32> = xs.iter().copied().collect();
    }
}
";
        let summary = run_rule("crates/core/src/query/x.rs", src, Rule::NoAllocInHotLoop);
        assert_eq!(summary.count(Rule::NoAllocInHotLoop), 7);
        // Spans: the `Vec::new` finding sits on the `new` token.
        let first = &summary.findings[0];
        assert_eq!(first.line, 3);
        assert_eq!(
            first.col,
            src.lines().nth(2).expect("line").find("new").expect("pos") + 1
        );
        assert!(first.message.contains("`hot`"));
        assert!(first.message.contains("depth 1"));
    }

    #[test]
    fn h1_ignores_allocations_outside_loops_and_out_of_scope_files() {
        let outside = "\
fn cold(xs: &[u32]) {
    let v = xs.to_vec();
    for x in xs {
        use_it(v[0] + x);
    }
}
";
        assert_eq!(
            run_rule(
                "crates/core/src/query/x.rs",
                outside,
                Rule::NoAllocInHotLoop
            )
            .count(Rule::NoAllocInHotLoop),
            0
        );
        let elsewhere = "fn f(xs: &[u32]) { for _ in xs { let v = xs.to_vec(); } }\n";
        assert_eq!(
            run_rule("crates/graph/src/x.rs", elsewhere, Rule::NoAllocInHotLoop)
                .count(Rule::NoAllocInHotLoop),
            0
        );
    }

    #[test]
    fn h1_ignores_tests_and_honors_justifications() {
        let test_only = "\
#[cfg(test)]
mod tests {
    fn t(xs: &[u32]) { for _ in xs { let v = xs.to_vec(); } }
}
";
        assert_eq!(
            run_rule(
                "crates/core/src/query/x.rs",
                test_only,
                Rule::NoAllocInHotLoop
            )
            .count(Rule::NoAllocInHotLoop),
            0
        );
        let justified = "\
fn f(xs: &[u32]) {
    for _ in xs {
        // lint:allow(no-alloc-in-hot-loop) — runs once per rebuild, not per query
        let v = xs.to_vec();
    }
}
";
        let summary = run_rule(
            "crates/core/src/query/x.rs",
            justified,
            Rule::NoAllocInHotLoop,
        );
        assert_eq!(summary.count(Rule::NoAllocInHotLoop), 0);
        assert_eq!(summary.justified.get("no-alloc-in-hot-loop"), Some(&1));
    }

    #[test]
    fn h1_sees_turbofish_collect_and_nested_depth() {
        let src = "\
fn f(xs: &[u32]) {
    while a {
        for x in xs {
            let v = xs.iter().collect::<Vec<_>>();
        }
    }
}
";
        let summary = run_rule("crates/core/src/heap.rs", src, Rule::NoAllocInHotLoop);
        assert_eq!(summary.count(Rule::NoAllocInHotLoop), 1);
        assert!(summary.findings[0].message.contains("depth 2"));
    }

    #[test]
    fn h1_ignores_clone_trait_bounds_and_derives() {
        let src = "\
#[derive(Clone)]
struct S;
fn f<T: Clone>(xs: &[T]) {
    for _ in xs {
        step();
    }
}
";
        assert_eq!(
            run_rule("crates/core/src/query/x.rs", src, Rule::NoAllocInHotLoop)
                .count(Rule::NoAllocInHotLoop),
            0
        );
    }
}
