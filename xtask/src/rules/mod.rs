//! The lint rules and their shared scaffolding.
//!
//! Every rule is a token-level pass over a [`SourceFile`] (lexed source +
//! per-token scope facts). Rules record findings through [`record`], which
//! consults the `lint:allow` justification model, so a justified site is
//! counted but never reported as a violation.

use std::collections::BTreeMap;
use std::fmt;

use crate::lex::Token;
use crate::scope::{SourceFile, TokenScope};

pub mod a1_weight_arith;
pub mod c1_no_as_cast;
pub mod e1_swallowed_result;
pub mod h1_no_alloc;
pub mod k1_no_binary_heap;
pub mod l1_no_unwrap;
pub mod l2_total_order;
pub mod l3_concurrency;
pub mod l4_paper_docs;

/// The lint rules, in report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// L1: no unwrap/expect in hot-path crates.
    NoUnwrap,
    /// L2: float ordering only through `OrderedWeight`.
    TotalOrderWeights,
    /// L3: concurrency only in the sanctioned build scope.
    SanctionedConcurrency,
    /// L4: query-processor `pub fn`s cite their paper section.
    PaperDocs,
    /// H1: no allocation inside hot-path loop bodies.
    NoAllocInHotLoop,
    /// A1: weight arithmetic goes through the checked helpers.
    CheckedWeightArithmetic,
    /// E1: no silently discarded `Result`s.
    NoSwallowedResult,
    /// K1: no `BinaryHeap` construction in the d-ary-kernel crates.
    NoBinaryHeap,
    /// C1: no bare `as` numeric casts in decode-classified files.
    NoAsCastInDecode,
    /// P1: no unjustified panic source reachable from a serving entry
    /// point. Not a token-local pass — produced by `cargo xtask panics`
    /// (see `crate::panics`), listed here so its findings share the
    /// baseline ratchet and report plumbing.
    PanicReachability,
    /// H2: no unjustified allocation source reachable from a steady-state
    /// serving entry point after warm-up. Not a token-local pass —
    /// produced by `cargo xtask allocs` (see `crate::allocs`), listed
    /// here so its findings share the baseline ratchet and report
    /// plumbing.
    AllocReachability,
    /// D1: no unjustified nondeterminism source (hash-order iteration,
    /// RandomState container construction, time/rng reads, order-varying
    /// float reduction, worker-count branches) reachable from a
    /// steady-state serving entry point. Not a token-local pass —
    /// produced by `cargo xtask determinism` (see `crate::determinism`),
    /// listed here so its findings share the baseline ratchet and report
    /// plumbing.
    Determinism,
    /// T1: no untrusted source→sink flow without a sanitizer on every
    /// chain. Not a token-local pass — produced by `cargo xtask taint`
    /// (see `crate::taint`), listed here so its findings share the
    /// baseline ratchet and report plumbing.
    Taint,
}

impl Rule {
    /// All rules, in report order.
    pub const ALL: [Rule; 9] = [
        Rule::NoUnwrap,
        Rule::TotalOrderWeights,
        Rule::SanctionedConcurrency,
        Rule::PaperDocs,
        Rule::NoAllocInHotLoop,
        Rule::CheckedWeightArithmetic,
        Rule::NoSwallowedResult,
        Rule::NoBinaryHeap,
        Rule::NoAsCastInDecode,
    ];

    /// The name used inside `lint:allow(..)` comments, CLI filters, and
    /// baseline entries.
    pub fn key(self) -> &'static str {
        match self {
            Rule::NoUnwrap => "no-unwrap",
            Rule::TotalOrderWeights => "total-order-weights",
            Rule::SanctionedConcurrency => "sanctioned-concurrency",
            Rule::PaperDocs => "paper-docs",
            Rule::NoAllocInHotLoop => "no-alloc-in-hot-loop",
            Rule::CheckedWeightArithmetic => "checked-weight-arithmetic",
            Rule::NoSwallowedResult => "no-swallowed-result",
            Rule::NoBinaryHeap => "no-binary-heap",
            Rule::NoAsCastInDecode => "no-as-cast-in-decode",
            Rule::PanicReachability => "panic-reachability",
            Rule::AllocReachability => "alloc-reachability",
            Rule::Determinism => "determinism",
            Rule::Taint => "taint-flow",
        }
    }

    /// Display label with the rule number.
    pub fn label(self) -> &'static str {
        match self {
            Rule::NoUnwrap => "L1 no-unwrap",
            Rule::TotalOrderWeights => "L2 total-order-weights",
            Rule::SanctionedConcurrency => "L3 sanctioned-concurrency",
            Rule::PaperDocs => "L4 paper-docs",
            Rule::NoAllocInHotLoop => "H1 no-alloc-in-hot-loop",
            Rule::CheckedWeightArithmetic => "A1 checked-weight-arithmetic",
            Rule::NoSwallowedResult => "E1 no-swallowed-result",
            Rule::NoBinaryHeap => "K1 no-binary-heap",
            Rule::NoAsCastInDecode => "C1 no-as-cast-in-decode",
            Rule::PanicReachability => "P1 panic-reachability",
            Rule::AllocReachability => "H2 alloc-reachability",
            Rule::Determinism => "D1 determinism",
            Rule::Taint => "T1 taint-flow",
        }
    }

    /// One-line documentation for `--list-rules`.
    pub fn doc(self) -> &'static str {
        match self {
            Rule::NoUnwrap => {
                "no .unwrap()/.expect(..) in non-test code of crates/core and crates/nvd"
            }
            Rule::TotalOrderWeights => {
                "no partial_cmp or raw-f64 heaps outside crates/graph/src/weight.rs (OrderedWeight)"
            }
            Rule::SanctionedConcurrency => {
                "no thread::spawn or bare Mutex outside the Observation-3 build scope (index.rs)"
            }
            Rule::PaperDocs => {
                "every pub fn in crates/core/src/query/ cites the paper section it implements"
            }
            Rule::NoAllocInHotLoop => {
                "no Vec::new/vec!/to_vec/clone/collect/format!/Box::new inside hot-path loop bodies"
            }
            Rule::CheckedWeightArithmetic => {
                "+/+= on weight-like operands in query code goes through weight_add/OrderedWeight"
            }
            Rule::NoSwallowedResult => {
                "no `let _ =` or bare `.ok();` discarding a Result outside tests"
            }
            Rule::NoBinaryHeap => {
                "no BinaryHeap::new/with_capacity in crates/{graph,alt,nvd,core} (use DaryHeap)"
            }
            Rule::PanicReachability => {
                "no unjustified panic source reachable from a serving entry point (cargo xtask panics)"
            }
            Rule::AllocReachability => {
                "no unjustified allocation reachable from a steady-state entry point (cargo xtask allocs)"
            }
            Rule::NoAsCastInDecode => {
                "no bare `as` numeric casts in decode-classified files (use try_from/From or justify)"
            }
            Rule::Determinism => {
                "no unjustified nondeterminism source reachable from a steady-state entry point (cargo xtask determinism)"
            }
            Rule::Taint => {
                "no untrusted source→sink flow without a sanitizer on every chain (cargo xtask taint)"
            }
        }
    }

    /// Parses a rule key from the CLI.
    pub fn from_key(key: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.key() == key)
    }
}

/// One lint finding with a byte-accurate source position.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: Rule,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based byte column.
    pub col: usize,
    pub message: String,
    /// The trimmed source line the finding sits on.
    pub snippet: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file,
            self.line,
            self.col,
            self.rule.key(),
            self.message
        )
    }
}

/// Aggregate result of a lint run.
#[derive(Debug, Default)]
pub struct Summary {
    pub findings: Vec<Finding>,
    /// Sites matched by a rule but exempted via `lint:allow`.
    pub justified: BTreeMap<&'static str, usize>,
    pub files_scanned: usize,
}

impl Summary {
    /// Findings of one rule.
    pub fn count(&self, rule: Rule) -> usize {
        self.findings.iter().filter(|v| v.rule == rule).count()
    }

    /// Justified (exempted) sites of one rule.
    pub fn justified_count(&self, rule: Rule) -> usize {
        self.justified.get(rule.key()).copied().unwrap_or(0)
    }
}

/// Runs every requested rule over one file, appending to `summary`.
pub fn scan_file(file: &SourceFile, rules: &[Rule], summary: &mut Summary) {
    for &rule in rules {
        match rule {
            Rule::NoUnwrap => l1_no_unwrap::check(file, summary),
            Rule::TotalOrderWeights => l2_total_order::check(file, summary),
            Rule::SanctionedConcurrency => l3_concurrency::check(file, summary),
            Rule::PaperDocs => l4_paper_docs::check(file, summary),
            Rule::NoAllocInHotLoop => h1_no_alloc::check(file, summary),
            Rule::CheckedWeightArithmetic => a1_weight_arith::check(file, summary),
            Rule::NoSwallowedResult => e1_swallowed_result::check(file, summary),
            Rule::NoBinaryHeap => k1_no_binary_heap::check(file, summary),
            Rule::NoAsCastInDecode => c1_no_as_cast::check(file, summary),
            // Whole-workspace reachability, not a per-file pass: runs via
            // `cargo xtask panics` / `cargo xtask allocs` /
            // `cargo xtask determinism` / `cargo xtask taint`, never
            // through `scan_file`.
            Rule::PanicReachability | Rule::AllocReachability | Rule::Determinism | Rule::Taint => {
            }
        }
    }
}

/// Records a match at (1-based) line/col: a finding, or a justified
/// exemption.
pub(crate) fn record(
    file: &SourceFile,
    line: usize,
    col: usize,
    rule: Rule,
    msg: String,
    summary: &mut Summary,
) {
    if file.justified(line, rule.key()) {
        *summary.justified.entry(rule.key()).or_insert(0) += 1;
    } else {
        summary.findings.push(Finding {
            rule,
            file: file.rel.clone(),
            line,
            col,
            message: msg,
            snippet: file.snippet(line).to_string(),
        });
    }
}

// ---------------------------------------------------------------------------
// Code-token navigation shared by the rule passes. `k` always indexes
// `file.code` (the comment-free token sequence).
// ---------------------------------------------------------------------------

/// The `k`-th code token.
pub(crate) fn tok(file: &SourceFile, k: usize) -> &Token {
    &file.tokens[file.code[k]]
}

/// Scope facts of the `k`-th code token.
pub(crate) fn scope(file: &SourceFile, k: usize) -> &TokenScope {
    &file.scopes[file.code[k]]
}

/// Whether code token `k` exists and satisfies `pred`.
pub(crate) fn tok_is(file: &SourceFile, k: usize, pred: impl Fn(&Token) -> bool) -> bool {
    k < file.code.len() && pred(tok(file, k))
}

/// Code-token index range `[start, end)` of the statement containing `k`,
/// bounded (exclusively) by the nearest `;`, `{` or `}` on each side.
pub(crate) fn statement_around(file: &SourceFile, k: usize) -> (usize, usize) {
    let boundary = |t: &Token| t.is_punct(";") || t.is_punct("{") || t.is_punct("}");
    let mut start = k;
    while start > 0 && !boundary(tok(file, start - 1)) {
        start -= 1;
    }
    let mut end = k + 1;
    while end < file.code.len() && !boundary(tok(file, end)) {
        end += 1;
    }
    (start, end)
}

/// Test helper: run one rule over fixture source.
#[cfg(test)]
pub(crate) fn run_rule(rel: &str, src: &str, rule: Rule) -> Summary {
    let file = SourceFile::from_source(rel, src);
    let mut summary = Summary::default();
    scan_file(&file, &[rule], &mut summary);
    summary
}
