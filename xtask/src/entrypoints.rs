//! The serving entry-point model shared by the reachability certifiers
//! and the token-level H1 hot-loop lint.
//!
//! `cargo xtask allocs` splits the serving lifecycle in two, following
//! the paper's own phase structure (heap *generation* happens once per
//! query term via the Heap Generator, then the Algorithm 1/3 loops only
//! *extract*):
//!
//! * **Steady state** — [`STEADY_ENTRIES`]: the query processors, the
//!   batch executor, the d-ary heap kernel ops, inverted-heap extraction
//!   and the seed-cache hit path. Allocation reached from here must carry
//!   an `ALLOC-OK: capacity invariant` or it is a finding.
//! * **Warm-up** — [`WARM_UP`]: constructors (`new`), index/heap builds,
//!   the `create`/`create_seeded` first-fill and seed-cache admission.
//!   These are allowed to allocate; the reachability sweep never enters
//!   them. (The dynamic `tests/alloc_steady_state.rs` twin pins what the
//!   warm-up carve-out actually costs per query, so nothing hides there.)
//!
//! H1's hot-loop file scope is *derived* from the same set: every file
//! defining a steady-state entry point must be in [`hot_loop_scope`],
//! enforced by the live-workspace test below.
//!
//! This module is also the single registration point for every
//! certifier's *perimeter*: [`CERT_DIRS`] (the shared reachability
//! perimeter of `panics`/`allocs`/`determinism`), [`PANIC_ENTRIES`] (the
//! panic certificate's serving surface), and [`TAINT_DIRS`] (the taint
//! certifier's wider perimeter, which adds the facade + CLI where
//! untrusted files enter). A future server crate registers its frame
//! parser here — one table, every certificate widens together.

/// The certified perimeter, relative to the workspace root: the five
/// hot-path crates, closed under the `kspin-core::modules` trait dispatch
/// (every `NetworkDistance` / `LowerBound` implementation lives inside
/// it). `crates/ch` joined when the batch executor's one-to-many sweep
/// pre-pass made its PHAST kernels a steady-state serving path; HL,
/// G-tree and the other baselines remain offline crates no serving path
/// calls into.
pub const CERT_DIRS: [&str; 6] = [
    "crates/graph/src",
    "crates/alt/src",
    "crates/nvd/src",
    "crates/core/src",
    "crates/ch/src",
    "crates/snapshot/src",
];

/// The untrusted-input certifier's perimeter: everything in
/// [`CERT_DIRS`] plus the facade and CLI sources under `src/`, because
/// that is where snapshot bytes enter from disk (`kspin-cli snapshot
/// load` → `KspinSystem::load_snapshot`). Kept a superset of
/// `CERT_DIRS` by the test below so the taint flood sees every function
/// the reachability certificates see.
pub const TAINT_DIRS: [&str; 7] = [
    "crates/graph/src",
    "crates/alt/src",
    "crates/nvd/src",
    "crates/core/src",
    "crates/ch/src",
    "crates/snapshot/src",
    "src",
];

/// The serving entry points the panic certificate quantifies over: every
/// query processor the engine exposes (§4 of the paper), the batch
/// executor, the d-ary heap kernel API, and both Heap Generator
/// constructors.
pub const PANIC_ENTRIES: [&str; 13] = [
    "QueryEngine::bknn",
    "QueryEngine::bknn_disjunctive",
    "QueryEngine::bknn_conjunctive",
    "QueryEngine::top_k",
    "QueryEngine::top_k_with",
    "QueryEngine::bknn_expr",
    "BatchExecutor::execute",
    "DaryHeap::push",
    "DaryHeap::pop",
    "DaryHeap::insert_or_decrease",
    "InvertedHeap::create",
    "InvertedHeap::create_seeded",
    "SnapshotFile::validate",
];

/// Steady-state serving entry points for the allocation certificate: the
/// 6 query processors (§4.1/§4.2), the batch executor, the 4 d-ary heap
/// kernel ops, inverted-heap extraction (Algorithm 4), the seed-cache
/// hit path, and the PHAST/RPHAST one-to-many sweep kernels the batch
/// executor's pre-pass runs per keyword group.
pub const STEADY_ENTRIES: [&str; 16] = [
    "QueryEngine::bknn",
    "QueryEngine::bknn_disjunctive",
    "QueryEngine::bknn_conjunctive",
    "QueryEngine::top_k",
    "QueryEngine::top_k_with",
    "QueryEngine::bknn_expr",
    "BatchExecutor::execute",
    "DaryHeap::push",
    "DaryHeap::pop",
    "DaryHeap::insert_or_decrease",
    "DaryHeap::clear",
    "InvertedHeap::extract",
    "HeapSeedCache::lookup",
    "OneToManySweep::one_to_many",
    "OneToManySweep::one_to_many_restricted",
    "SnapshotFile::validate",
];

/// Warm-up boundary specs, resolved with entry-point semantics (a bare
/// name matches every certified fn of that name — `new` covers every
/// constructor, `build` every index build). Reachability never crosses
/// into these items: they may allocate freely. `Contractor::run` is the
/// CH preprocessing driver, only ever called from
/// `ContractionHierarchy::build`; it is fenced by name because the
/// conservative resolver would otherwise link it from `ServingQuery::run`.
/// `SnapshotWriter::push` and `Pool::take` are snapshot persist/load-time
/// code (never on the serving path), fenced by name for the same reason:
/// the resolver would link them from the heap kernel's `push` and the
/// query processors' iterator `take` call sites.
pub const WARM_UP: [&str; 9] = [
    "new",
    "build",
    "InvertedHeap::create",
    "InvertedHeap::create_seeded",
    "HeapSeedCache::admit",
    "compute_seeds",
    "Contractor::run",
    "SnapshotWriter::push",
    "Pool::take",
];

/// Files (beyond the `crates/core/src/query/` processors) that define a
/// steady-state entry point; with the prefix below this is H1's hot-loop
/// scope.
pub const HOT_LOOP_FILES: [&str; 7] = [
    "crates/core/src/heap.rs",
    "crates/core/src/serving.rs",
    "crates/core/src/cache.rs",
    "crates/graph/src/dheap.rs",
    "crates/nvd/src/knn.rs",
    "crates/ch/src/sweep.rs",
    "crates/snapshot/src/reader.rs",
];

/// Path prefixes in H1's hot-loop scope.
pub const HOT_LOOP_PREFIXES: [&str; 1] = ["crates/core/src/query/"];

/// Whether a workspace-relative path is in the H1 hot-loop scope.
pub fn hot_loop_scope(rel: &str) -> bool {
    HOT_LOOP_PREFIXES.iter().any(|p| rel.starts_with(p)) || HOT_LOOP_FILES.contains(&rel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::report::load_perimeter;

    /// The derivation contract of satellite H1 realignment: H1's scope is
    /// not a hand-maintained list that can drift — every file defining a
    /// steady-state entry point is hot-loop scope, live on the workspace.
    #[test]
    fn hot_loop_scope_covers_every_steady_entry_definition() {
        let files = load_perimeter();
        let graph = CallGraph::build(&files);
        for spec in STEADY_ENTRIES {
            let resolved = graph.resolve_entry(spec);
            assert!(
                !resolved.is_empty(),
                "steady entry {spec} resolves to nothing"
            );
            for idx in resolved {
                let file = &graph.items[idx].file;
                assert!(
                    hot_loop_scope(file),
                    "steady entry {spec} is defined in {file}, which is outside \
                     the H1 hot-loop scope — add it to HOT_LOOP_FILES"
                );
            }
        }
    }

    /// Warm-up specs must stay anchored to real fns too; a rename that
    /// silently widened the steady perimeter would weaken the certificate
    /// in the *unsound* direction.
    #[test]
    fn warm_up_specs_resolve_on_the_live_workspace() {
        let files = load_perimeter();
        let graph = CallGraph::build(&files);
        for spec in WARM_UP {
            assert!(
                !graph.resolve_entry(spec).is_empty(),
                "warm-up spec {spec} resolves to nothing"
            );
        }
    }

    #[test]
    fn scope_predicate_matches_prefixes_and_files() {
        assert!(hot_loop_scope("crates/core/src/query/topk.rs"));
        assert!(hot_loop_scope("crates/graph/src/dheap.rs"));
        assert!(!hot_loop_scope("crates/graph/src/csr.rs"));
        assert!(!hot_loop_scope("crates/gtree/src/tree.rs"));
    }

    /// The taint perimeter must contain everything the reachability
    /// certificates cover — a dir added to `CERT_DIRS` but forgotten in
    /// `TAINT_DIRS` would silently exempt new code from flow analysis.
    #[test]
    fn taint_perimeter_is_a_superset_of_the_certified_perimeter() {
        for dir in CERT_DIRS {
            assert!(
                TAINT_DIRS.contains(&dir),
                "{dir} is certified but outside the taint perimeter"
            );
        }
        assert!(TAINT_DIRS.contains(&"src"), "facade + CLI must be swept");
    }

    /// Panic entries resolve on the live workspace, same rot guard as the
    /// warm-up specs above.
    #[test]
    fn panic_entries_resolve_on_the_live_workspace() {
        let files = load_perimeter();
        let graph = CallGraph::build(&files);
        for spec in PANIC_ENTRIES {
            assert!(
                !graph.resolve_entry(spec).is_empty(),
                "panic entry {spec} resolves to nothing"
            );
        }
    }
}
