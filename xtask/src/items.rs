//! Symbol-level item parsing on top of [`crate::lex`].
//!
//! A recursive descent over the comment-free code-token stream of a
//! [`SourceFile`] that recovers the *item structure* the token-level lint
//! passes cannot see: every `fn` (free functions, inherent methods, trait
//! methods, nested fns) with its byte-accurate signature position and the
//! code-token range of its body, plus the `impl` context it sits in
//! (self type and, for trait impls, the trait name).
//!
//! The model is deliberately shallower than a full Rust parse — exactly
//! deep enough for a sound call graph:
//!
//! * **Closures are folded into their enclosing `fn`**: a call inside
//!   `|x| { f(x) }` is attributed to the surrounding function. This
//!   over-approximates (the closure might never run) which is the safe
//!   direction for panic reachability.
//! * **Nested `fn`s are their own items** and their token ranges are
//!   subtracted from the parent body by the call scanner, so a parent is
//!   only charged for calls it actually makes.
//! * **`#[cfg(test)]` / `#[cfg(debug_assertions)]` / the `audit` feature**
//!   mark an item as outside the release artifact being certified; the
//!   call-graph layer drops such items from resolution entirely.

use crate::lex::{Token, TokenKind};
use crate::scope::SourceFile;

/// One parsed `fn` item.
#[derive(Debug, Clone)]
pub struct Item {
    /// The bare function name.
    pub name: String,
    /// For methods: the self type of the enclosing `impl` (last path
    /// segment, generics stripped) — `DaryHeap` for
    /// `impl<'a> DaryHeap { … }` and for `impl Trait for DaryHeap { … }`.
    pub self_type: Option<String>,
    /// For trait-impl methods: the trait name (last path segment). Read
    /// by the parser fixtures; kept on the item for future dispatch
    /// narrowing in the call graph.
    #[cfg_attr(not(test), allow(dead_code))]
    pub trait_name: Option<String>,
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// Index into the file list handed to the parser batch.
    pub file_idx: usize,
    /// 1-based source line of the `fn` keyword.
    pub line: usize,
    /// Code-token index range `[start, end)` of the body *interior*
    /// (between the braces). Empty for bodyless trait signatures.
    pub body: (usize, usize),
    /// Inside `#[cfg(test)]` / `#[test]` code.
    pub is_test: bool,
    /// Gated behind `#[cfg(debug_assertions)]`, `#[cfg(test)]`, or the
    /// `audit` feature — compiled out of the release serving binary.
    pub debug_only: bool,
}

impl Item {
    /// `Type::name` for methods, bare `name` for free fns.
    pub fn qualified(&self) -> String {
        match &self.self_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }

    /// Whether the item is part of the certified release artifact.
    pub fn certified(&self) -> bool {
        !self.is_test && !self.debug_only
    }
}

/// Inherited parse context while descending into blocks.
#[derive(Debug, Clone, Default)]
struct Ctx {
    self_type: Option<String>,
    trait_name: Option<String>,
    in_test: bool,
    debug_only: bool,
}

/// Flags gathered from the attributes directly above an item.
#[derive(Debug, Clone, Copy, Default)]
struct Pending {
    test: bool,
    debug: bool,
}

/// Parses every `fn` item of `file`. `file_idx` is recorded verbatim on
/// each item so batch callers can find the backing [`SourceFile`].
pub fn parse_items(file: &SourceFile, file_idx: usize) -> Vec<Item> {
    let mut out = Vec::new();
    let ctx = Ctx::default();
    parse_block(file, file_idx, 0, file.code.len(), &ctx, &mut out);
    out
}

/// The `k`-th code token.
fn tok(file: &SourceFile, k: usize) -> &Token {
    &file.tokens[file.code[k]]
}

/// Index of the `}` matching the `{` at code index `k` (or `end` if the
/// file is truncated).
pub(crate) fn match_brace(file: &SourceFile, k: usize, end: usize) -> usize {
    debug_assert!(tok(file, k).is_punct("{"));
    let mut depth = 0usize;
    for j in k..end {
        match tok(file, j).text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    end
}

/// Scans the attribute group starting at the `#` at code index `k`.
/// Returns the code index just past the closing `]` and the cfg flags the
/// attribute contributes, or `None` if this `#` opens no attribute.
fn scan_attr(file: &SourceFile, k: usize, end: usize) -> Option<(usize, Pending)> {
    let mut j = k + 1;
    if j < end && tok(file, j).is_punct("!") {
        j += 1;
    }
    if !(j < end && tok(file, j).is_punct("[")) {
        return None;
    }
    let mut depth = 0usize;
    let mut idents: Vec<String> = Vec::new();
    let mut strs: Vec<String> = Vec::new();
    for i in j..end {
        let t = tok(file, i);
        match t.kind {
            TokenKind::Punct if t.text == "[" => depth += 1,
            TokenKind::Punct if t.text == "]" => {
                depth -= 1;
                if depth == 0 {
                    let has = |s: &str| idents.iter().any(|i| i == s);
                    let cfg = has("cfg");
                    let test = (cfg && has("test") && !has("not")) || idents == ["test"];
                    let debug = cfg
                        && !has("not")
                        && (has("debug_assertions")
                            || has("test")
                            || (has("feature") && strs.iter().any(|s| s == "\"audit\"")));
                    return Some((i + 1, Pending { test, debug }));
                }
            }
            TokenKind::Ident => idents.push(t.text.clone()),
            TokenKind::StrLit => strs.push(t.text.clone()),
            _ => {}
        }
    }
    None
}

/// Recursive descent over `[k, end)`: records `fn` items, descends into
/// `impl` bodies with the impl's self type, and into every other brace
/// block with the inherited context (which is how nested fns and
/// `#[cfg(test)] mod tests` are found).
fn parse_block(
    file: &SourceFile,
    file_idx: usize,
    mut k: usize,
    end: usize,
    ctx: &Ctx,
    out: &mut Vec<Item>,
) {
    let mut pending = Pending::default();
    while k < end {
        let t = tok(file, k);
        if t.is_punct("#") {
            if let Some((next, flags)) = scan_attr(file, k, end) {
                pending.test |= flags.test;
                pending.debug |= flags.debug;
                k = next;
                continue;
            }
        }
        if t.is_ident("impl") {
            // Header runs to the body `{`; const-generic brace exprs do
            // not occur in impl headers in this workspace.
            let mut open = k + 1;
            while open < end && !tok(file, open).is_punct("{") {
                open += 1;
            }
            if open >= end {
                return;
            }
            let (self_type, trait_name) = parse_impl_header(file, k + 1, open);
            let close = match_brace(file, open, end);
            let inner = Ctx {
                self_type,
                trait_name,
                in_test: ctx.in_test || pending.test,
                debug_only: ctx.debug_only || pending.debug,
            };
            parse_block(file, file_idx, open + 1, close, &inner, out);
            pending = Pending::default();
            k = close + 1;
            continue;
        }
        if t.is_ident("fn") {
            // An item fn is `fn <name>`; `fn(` is a pointer type.
            if let Some(item_end) = parse_fn(file, file_idx, k, end, ctx, &pending, out) {
                pending = Pending::default();
                k = item_end;
                continue;
            }
        }
        if t.is_punct("{") {
            let close = match_brace(file, k, end);
            let inner = Ctx {
                self_type: ctx.self_type.clone(),
                trait_name: ctx.trait_name.clone(),
                in_test: ctx.in_test || pending.test,
                debug_only: ctx.debug_only || pending.debug,
            };
            parse_block(file, file_idx, k + 1, close, &inner, out);
            pending = Pending::default();
            k = close + 1;
            continue;
        }
        if t.is_punct(";") {
            pending = Pending::default();
        }
        k += 1;
    }
}

/// Parses one `fn` item whose `fn` keyword sits at code index `k`.
/// Returns the code index just past the item, or `None` if this `fn` is
/// not an item (e.g. an `fn(u32)` pointer type).
fn parse_fn(
    file: &SourceFile,
    file_idx: usize,
    k: usize,
    end: usize,
    ctx: &Ctx,
    pending: &Pending,
    out: &mut Vec<Item>,
) -> Option<usize> {
    let name_k = k + 1;
    if name_k >= end || tok(file, name_k).kind != TokenKind::Ident {
        return None;
    }
    let name = tok(file, name_k).text.clone();
    // Signature scan: the body `{` (or trait-sig `;`) is the first one at
    // paren/bracket depth 0. Generic params and `-> impl Fn(..)` returns
    // keep their delimiters balanced, so plain depth tracking suffices.
    let mut depth = 0usize;
    let mut j = name_k + 1;
    while j < end {
        let t = tok(file, j);
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth = depth.saturating_sub(1),
            "{" if depth == 0 => break,
            ";" if depth == 0 => {
                // Bodyless trait-method signature.
                out.push(Item {
                    name,
                    self_type: ctx.self_type.clone(),
                    trait_name: ctx.trait_name.clone(),
                    file: file.rel.clone(),
                    file_idx,
                    line: tok(file, k).line,
                    body: (j, j),
                    is_test: ctx.in_test || pending.test,
                    debug_only: ctx.debug_only || pending.debug,
                });
                return Some(j + 1);
            }
            _ => {}
        }
        j += 1;
    }
    if j >= end {
        return None;
    }
    let close = match_brace(file, j, end);
    out.push(Item {
        name,
        self_type: ctx.self_type.clone(),
        trait_name: ctx.trait_name.clone(),
        file: file.rel.clone(),
        file_idx,
        line: tok(file, k).line,
        body: (j + 1, close),
        is_test: ctx.in_test || pending.test,
        debug_only: ctx.debug_only || pending.debug,
    });
    // Descend for nested fns; they carry no impl context.
    let inner = Ctx {
        self_type: None,
        trait_name: None,
        in_test: ctx.in_test || pending.test,
        debug_only: ctx.debug_only || pending.debug,
    };
    parse_block(file, file_idx, j + 1, close, &inner, out);
    Some(close + 1)
}

/// Delimiter-depth contribution of one token, counting parens, brackets,
/// braces and angle brackets (`<<`/`>>` lex as one token and count
/// twice; `->` contributes nothing).
pub(crate) fn delim_depth(t: &Token) -> i32 {
    match t.text.as_str() {
        "(" | "[" | "{" | "<" => 1,
        ")" | "]" | "}" | ">" => -1,
        "<<" => 2,
        ">>" => -2,
        _ => 0,
    }
}

/// The last identifier at nesting depth 0 in code range `[from, to)` —
/// the path head of a type position: `Vec` for `Vec<u64>`, `Arc` for
/// `std::sync::Arc<[T]>`, `Graph` for `&'a Graph`. `None` when the range
/// has no depth-0 path segment (`[u32; 4]`, `(A, B)`, `fn(u32)`).
pub(crate) fn type_head(file: &SourceFile, from: usize, to: usize) -> Option<String> {
    let mut depth = 0i32;
    let mut head = None;
    for j in from..to {
        let t = tok(file, j);
        if depth == 0 && t.kind == TokenKind::Ident {
            if t.text == "fn" {
                // `fn(..) -> T` pointer type: its return type must not
                // masquerade as the path head.
                return None;
            }
            if !matches!(
                t.text.as_str(),
                "dyn" | "mut" | "const" | "impl" | "pub" | "crate" | "as"
            ) {
                head = Some(t.text.clone());
            }
        }
        depth += delim_depth(t);
    }
    head
}

/// Extracts `(struct, field, type head)` triples from every named-struct
/// declaration in `file`. The call graph uses these to type
/// `self.field.method(…)` receivers — e.g. `entries: Vec<u64>` on
/// `DaryHeap` types `self.entries.push(…)` as a `Vec` growth site.
/// Tuple/unit structs and fields without a depth-0 path head are skipped.
pub fn parse_fields(file: &SourceFile) -> Vec<(String, String, String)> {
    let mut out = Vec::new();
    let n = file.code.len();
    let mut k = 0;
    while k < n {
        let is_decl = tok(file, k).is_ident("struct")
            && k + 1 < n
            && tok(file, k + 1).kind == TokenKind::Ident;
        if !is_decl {
            k += 1;
            continue;
        }
        let name = tok(file, k + 1).text.clone();
        // Generics run to the body `{`; a depth-0 `;` or `(` first means
        // a unit or tuple struct (no named fields).
        let mut depth = 0i32;
        let mut open = k + 2;
        while open < n {
            let t = tok(file, open);
            if depth == 0 && (t.is_punct(";") || t.is_punct("(")) {
                break;
            }
            if depth == 0 && t.is_punct("{") {
                let close = match_brace(file, open, n);
                scan_fields(file, &name, open + 1, close, &mut out);
                k = close;
                break;
            }
            depth += delim_depth(t);
            open += 1;
        }
        k += 1;
    }
    out
}

/// Splits a named-struct body into depth-0 comma chunks and records each
/// `field: Type` pair with a resolvable type head.
fn scan_fields(
    file: &SourceFile,
    struct_name: &str,
    from: usize,
    to: usize,
    out: &mut Vec<(String, String, String)>,
) {
    let mut depth = 0i32;
    let mut start = from;
    let mut j = from;
    while j <= to {
        let boundary = j == to || (depth == 0 && tok(file, j).is_punct(","));
        if !boundary {
            depth += delim_depth(tok(file, j));
            j += 1;
            continue;
        }
        let mut d = 0i32;
        for c in start..j {
            let t = tok(file, c);
            if d == 0 && t.is_punct(":") && c > start && tok(file, c - 1).kind == TokenKind::Ident {
                if let Some(head) = type_head(file, c + 1, j) {
                    out.push((struct_name.to_string(), tok(file, c - 1).text.clone(), head));
                }
                break;
            }
            d += delim_depth(t);
        }
        j += 1;
        start = j;
    }
}

/// Extracts (self type, trait name) from the impl-header tokens in
/// `[k, open)`: generics are skipped, a top-level `for` (that is not an
/// HRTB `for<`) splits trait from type, and each side's name is its last
/// angle-depth-0 identifier before `where`.
fn parse_impl_header(file: &SourceFile, k: usize, open: usize) -> (Option<String>, Option<String>) {
    // Angle-depth bookkeeping: `<<`/`>>` lex as one token and count twice.
    let angle = |t: &Token| -> i32 {
        match t.text.as_str() {
            "<" => 1,
            ">" => -1,
            "<<" => 2,
            ">>" => -2,
            _ => 0,
        }
    };
    let mut depth = 0i32;
    let mut split = None;
    for j in k..open {
        let t = tok(file, j);
        depth += angle(t);
        if depth == 0 && t.is_ident("for") && !(j + 1 < open && tok(file, j + 1).is_punct("<")) {
            split = Some(j);
        }
    }
    let name_in = |from: usize, to: usize| -> Option<String> {
        let mut depth = 0i32;
        let mut name = None;
        for j in from..to {
            let t = tok(file, j);
            if depth == 0 && t.is_ident("where") {
                break;
            }
            if depth == 0
                && t.kind == TokenKind::Ident
                && !matches!(t.text.as_str(), "dyn" | "mut" | "const" | "unsafe" | "as")
            {
                name = Some(t.text.clone());
            }
            depth += angle(t);
        }
        name
    };
    match split {
        Some(f) => (name_in(f + 1, open), name_in(k, f)),
        None => (name_in(k, open), None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(src: &str) -> Vec<Item> {
        parse_items(&SourceFile::from_source("fixture.rs", src), 0)
    }

    fn find<'a>(items: &'a [Item], q: &str) -> &'a Item {
        items
            .iter()
            .find(|i| i.qualified() == q)
            .unwrap_or_else(|| panic!("item `{q}` not parsed"))
    }

    #[test]
    fn free_fns_methods_and_trait_impls() {
        let src = "\
pub fn free(x: u32) -> u32 { x }
impl DaryHeap {
    pub fn push(&mut self, key: u32) { body(); }
}
impl<T: Ord> Iterator for Wrapper<T> {
    fn next(&mut self) -> Option<T> { inner() }
}
";
        let items = items(src);
        assert_eq!(items.len(), 3);
        let free = find(&items, "free");
        assert_eq!((free.line, free.self_type.clone()), (1, None));
        let push = find(&items, "DaryHeap::push");
        assert_eq!(push.line, 3);
        let next = find(&items, "Wrapper::next");
        assert_eq!(next.trait_name.as_deref(), Some("Iterator"));
    }

    #[test]
    fn generics_and_where_clauses_do_not_confuse_the_self_type() {
        let src = "\
impl<'a, K: Ord, V> Map<'a, K, V> where K: Clone {
    fn get(&self) -> Option<&V> { None }
}
impl From<Vec<u32>> for Packed {
    fn from(v: Vec<u32>) -> Self { Packed }
}
";
        let items = items(src);
        assert_eq!(find(&items, "Map::get").self_type.as_deref(), Some("Map"));
        let from = find(&items, "Packed::from");
        assert_eq!(from.trait_name.as_deref(), Some("From"));
    }

    #[test]
    fn nested_fns_are_separate_items_with_exact_bodies() {
        let src = "\
fn outer() {
    fn helper(x: u32) -> u32 { x + 1 }
    helper(2);
}
";
        let items = items(src);
        assert_eq!(items.len(), 2);
        let outer = find(&items, "outer");
        let helper = find(&items, "helper");
        assert!(outer.body.0 < helper.body.0 && helper.body.1 < outer.body.1);
    }

    #[test]
    fn bodyless_trait_signatures_have_empty_bodies() {
        let src = "\
trait Distance {
    fn distance(&mut self, s: u32, t: u32) -> u32;
    fn batch(&mut self) { default_body() }
}
";
        let items = items(src);
        let sig = find(&items, "distance");
        assert_eq!(sig.body.0, sig.body.1);
        let def = find(&items, "batch");
        assert!(def.body.0 < def.body.1);
    }

    #[test]
    fn cfg_gates_mark_items_debug_only() {
        let src = "\
fn live() { a() }
#[cfg(any(debug_assertions, feature = \"audit\"))]
fn audit_only() { b() }
#[cfg(test)]
mod tests {
    fn in_tests() { c() }
    #[test]
    fn unit() { d() }
}
#[cfg(not(test))]
fn shipped() { e() }
";
        let items = items(src);
        assert!(find(&items, "live").certified());
        assert!(find(&items, "audit_only").debug_only);
        assert!(find(&items, "in_tests").is_test);
        assert!(find(&items, "unit").is_test);
        assert!(find(&items, "shipped").certified());
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "fn real(cb: fn(u32) -> u32) -> u32 { cb(1) }\n";
        let items = items(src);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name, "real");
    }

    #[test]
    fn struct_fields_resolve_to_type_heads() {
        let src = "\
pub struct DaryHeap {
    pub(crate) entries: Vec<u64>,
    pos: Box<[u32]>,
    seeds: std::sync::Arc<[Seed]>,
    graph: &'static Graph,
    raw: [u32; 4],
    pair: (u32, u32),
    cb: fn(u32) -> u32,
}
struct Unit;
struct Tuple(u32, Vec<u8>);
struct Generic<K: Ord, V> where V: Clone {
    #[allow(dead_code)]
    map: BTreeMap<K, V>,
}
";
        let file = SourceFile::from_source("fixture.rs", src);
        let fields = parse_fields(&file);
        let head = |s: &str, f: &str| {
            fields
                .iter()
                .find(|(sn, fname, _)| sn == s && fname == f)
                .map(|(_, _, h)| h.as_str())
        };
        assert_eq!(head("DaryHeap", "entries"), Some("Vec"));
        assert_eq!(head("DaryHeap", "pos"), Some("Box"));
        assert_eq!(head("DaryHeap", "seeds"), Some("Arc"));
        assert_eq!(head("DaryHeap", "graph"), Some("Graph"));
        // Non-path types have no head and are skipped.
        assert_eq!(head("DaryHeap", "raw"), None);
        assert_eq!(head("DaryHeap", "pair"), None);
        assert_eq!(head("DaryHeap", "cb"), None);
        assert_eq!(head("Generic", "map"), Some("BTreeMap"));
        assert!(!fields.iter().any(|(s, _, _)| s == "Unit" || s == "Tuple"));
    }

    #[test]
    fn impl_block_line_numbers_are_byte_accurate() {
        let src = "// leading comment\n\nimpl Foo {\n    fn bar(&self) {}\n}\n";
        let items = items(src);
        assert_eq!(find(&items, "Foo::bar").line, 4);
    }
}
