//! Quickstart: build a K-SPIN system over a synthetic city and answer the
//! three query types from the paper's introduction.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use kspin::prelude::*;
use kspin_graph::generate::{road_network, RoadNetworkConfig};
use kspin_text::generate::{corpus, CorpusConfig};

fn main() {
    // A ~20k-vertex road network with Zipf-distributed POI keywords.
    println!("building road network and POI corpus…");
    let graph = road_network(&RoadNetworkConfig::new(20_000, 7));
    let (corp, vocab) = corpus(&CorpusConfig::new(graph.num_vertices(), 7));
    println!(
        "  {} vertices, {} edges, {} POIs, {} keywords",
        graph.num_vertices(),
        graph.num_edges(),
        corp.num_objects(),
        corp.num_terms()
    );

    println!("building K-SPIN (ALT landmarks + keyword separated index)…");
    let system = KspinSystem::build(graph, corp, vocab, &KspinConfig::default());
    let stats = system.index.stats();
    println!(
        "  {} NVD-indexed keywords, {} list-only keywords (Observation 1), {:.2}s",
        stats.nvd_terms, stats.small_terms, stats.build_seconds
    );

    let mut engine = system.engine_dijkstra();
    let q: VertexId = 1234;

    // Boolean kNN, disjunctive: nearest POIs with "restaurant" OR "hotel".
    let terms = system.terms(&["restaurant", "hotel"]);
    println!("\nB5NN (restaurant ∨ hotel) from vertex {q}:");
    for (o, d) in engine.bknn(q, 5, &terms, Op::Or) {
        println!("  object {o:>6} at network distance {d}");
    }

    // Boolean kNN, conjunctive: must contain both.
    println!("\nB5NN (restaurant ∧ hotel) from vertex {q}:");
    for (o, d) in engine.bknn(q, 5, &terms, Op::And) {
        println!("  object {o:>6} at network distance {d}");
    }

    // Top-k: weighted-distance score (Eq. 1).
    println!("\ntop-5 by spatio-textual score (restaurant, hotel):");
    for (o, st) in engine.top_k(q, 5, &terms) {
        println!("  object {o:>6} score {st:.1}");
    }

    // Mixed boolean criteria (§2 remark): school AND (bank OR supermarket).
    let school = system.terms(&["school"])[0];
    let or_part = system.terms(&["bank", "supermarket"]);
    let expr = BoolExpr::And(vec![BoolExpr::Term(school), BoolExpr::any(&or_part)]);
    println!("\nB3NN (school ∧ (bank ∨ supermarket)):");
    for (o, d) in engine.bknn_expr(q, 3, &expr) {
        println!("  object {o:>6} at network distance {d}");
    }

    let s = engine.stats();
    println!(
        "\nengine stats: {} network distances, {} heap extractions, {} lower bounds, {} pruned",
        s.dist_computations, s.heap_extractions, s.lb_computations, s.pruned_candidates
    );
}
