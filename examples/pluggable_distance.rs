//! The paper's "Flexibility" claim, live: the same Keyword Separated Index
//! answers the same workload through four different Network Distance
//! Modules — plain Dijkstra, Contraction Hierarchies (KS-CH), hub labels
//! (KS-HL, the PHL stand-in), and G-tree assembly (KS-GT) — with identical
//! results and very different costs.
//!
//! ```text
//! cargo run --release --example pluggable_distance
//! ```

use std::time::Instant;

use kspin::adapters::{ChDistance, GtreeNetworkDistance, HlDistance};
use kspin::prelude::*;
use kspin_ch::{ChConfig, ContractionHierarchy};
use kspin_graph::generate::{road_network, RoadNetworkConfig};
use kspin_gtree::tree::GtreeConfig;
use kspin_gtree::GTree;
use kspin_hl::HubLabels;
use kspin_text::generate::{corpus, CorpusConfig};
use kspin_text::workload::{queries, Query, WorkloadConfig};

/// Runs the workload through one engine; returns (queries/sec, checksum).
fn run<D: NetworkDistance>(
    name: &str,
    mut engine: QueryEngine<'_, D>,
    qs: &[Query],
) -> (f64, usize) {
    let t0 = Instant::now();
    let mut returned = 0usize;
    for q in qs {
        returned += engine.top_k(q.vertex, 10, &q.terms).len();
    }
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "  {:<10} {:>9.1} queries/s   ({:>7.1} µs/query)",
        name,
        qs.len() as f64 / dt,
        dt / qs.len() as f64 * 1e6
    );
    (qs.len() as f64 / dt, returned)
}

fn main() {
    println!("building world…");
    let graph = road_network(&RoadNetworkConfig::new(30_000, 21));
    let (corp, vocab) = corpus(&CorpusConfig::new(graph.num_vertices(), 21));

    println!("building distance modules…");
    let t0 = Instant::now();
    let ch = ContractionHierarchy::build(&graph, &ChConfig::default());
    println!(
        "  CH:      {:>8} KiB in {:.2}s",
        ch.size_bytes() / 1024,
        t0.elapsed().as_secs_f64()
    );
    let t0 = Instant::now();
    let hl = HubLabels::build(&ch);
    println!(
        "  HL:      {:>8} KiB in {:.2}s (avg label {:.1})",
        hl.size_bytes() / 1024,
        t0.elapsed().as_secs_f64(),
        hl.avg_label_len()
    );
    let t0 = Instant::now();
    let gt = GTree::build(&graph, &GtreeConfig::default());
    println!(
        "  G-tree:  {:>8} KiB in {:.2}s",
        gt.size_bytes() / 1024,
        t0.elapsed().as_secs_f64()
    );

    println!("building K-SPIN index…");
    let system = KspinSystem::build(graph, corp, vocab, &KspinConfig::default());
    println!(
        "  keyword separated index: {:>8} KiB in {:.2}s",
        system.index.size_bytes() / 1024,
        system.index.stats().build_seconds
    );

    // The §7.1 workload: correlated 2-keyword vectors × query vertices.
    let wl = WorkloadConfig {
        seed_terms: vec![0, 1, 2, 3, 4],
        objects_per_term: 4,
        vertices_per_vector: 10,
        seed: 5,
    };
    let qs = queries(&system.corpus, &wl, system.graph.num_vertices(), 2);
    println!("\nrunning {} top-10 queries per module…", qs.len());

    let (_, c1) = run("Dijkstra", system.engine_dijkstra(), &qs);
    let (_, c2) = run("KS-CH", system.engine(ChDistance::new(&ch)), &qs);
    let (_, c3) = run("KS-HL", system.engine(HlDistance::new(&hl)), &qs);
    let (_, c4) = run(
        "KS-GT",
        system.engine(GtreeNetworkDistance::new(&gt, &system.graph)),
        &qs,
    );
    assert!(c1 == c2 && c2 == c3 && c3 == c4, "modules disagree!");
    println!("\nall four modules returned identical results — flexibility without compromise.");
}
