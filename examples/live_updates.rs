//! Dynamic POI churn (§6.2): a running service lazily inserts and deletes
//! objects while continuing to answer exact queries, then amortizes the
//! accumulated updates with per-keyword rebuilds.
//!
//! ```text
//! cargo run --release --example live_updates
//! ```

use std::time::Instant;

use kspin::prelude::*;
use kspin_graph::generate::{road_network, RoadNetworkConfig};
use kspin_text::generate::{corpus, CorpusConfig};

fn main() {
    println!("building world…");
    let graph = road_network(&RoadNetworkConfig::new(15_000, 33));
    let (corp, vocab) = corpus(&CorpusConfig::new(graph.num_vertices(), 33));
    let num_objects = corp.num_objects() as ObjectId;

    // Open with only 90% of the POIs; the rest arrive live.
    println!("building index over 90% of {} POIs…", num_objects);
    let alt = kspin_alt::AltIndex::build(&graph, 16, kspin_alt::LandmarkStrategy::Farthest, 0);
    let mut index =
        KspinIndex::build_filtered(&graph, &corp, |o| o % 10 != 0, &KspinConfig::default());

    let late: Vec<ObjectId> = (0..num_objects).filter(|o| o % 10 == 0).collect();
    println!("lazily inserting the remaining {} POIs…", late.len());
    let mut dist = DijkstraDistance::new(&graph);
    let t0 = Instant::now();
    for &o in &late {
        index.insert_object(&graph, &corp, o, &mut dist);
    }
    let per_insert = t0.elapsed().as_secs_f64() / late.len() as f64 * 1e3;
    println!("  {per_insert:.3} ms per lazy insertion (no NVD rebuilt)");

    // Queries remain exact immediately.
    let hotel = vocab.get("hotel").expect("seed term exists");
    let bank = vocab.get("bank").expect("seed term exists");
    let before = {
        let mut engine =
            QueryEngine::new(&graph, &corp, &index, &alt, DijkstraDistance::new(&graph));
        engine.bknn(77, 5, &[hotel, bank], Op::Or)
    };
    println!("\nB5NN (hotel ∨ bank) after inserts:");
    for &(o, d) in &before {
        println!(
            "  object {o:>6} at distance {d} {}",
            if o % 10 == 0 { "(late arrival)" } else { "" }
        );
    }

    // Delete a batch (e.g. closures) — mark-only, still exact.
    println!("\ndeleting 5% of POIs (mark-only)…");
    let t0 = Instant::now();
    let mut deleted = 0;
    for o in 0..num_objects {
        if o % 20 == 3 {
            index.delete_object(&corp, o);
            deleted += 1;
        }
    }
    println!(
        "  {deleted} deletions in {:.1} ms total",
        t0.elapsed().as_secs_f64() * 1e3
    );
    let after = {
        let mut engine =
            QueryEngine::new(&graph, &corp, &index, &alt, DijkstraDistance::new(&graph));
        engine.bknn(77, 5, &[hotel, bank], Op::Or)
    };
    assert!(
        after.iter().all(|&(o, _)| o % 20 != 3),
        "deleted object returned!"
    );
    println!("  results still exact, deleted objects filtered");

    // Amortize: rebuild every keyword index that accumulated updates.
    println!("\nrebuilding keyword indexes to fold updates in…");
    let t0 = Instant::now();
    for t in 0..corp.num_terms() as TermId {
        index.rebuild_term(&graph, &corp, t);
    }
    println!("  full rebuild sweep in {:.2}s", t0.elapsed().as_secs_f64());
    let mut engine = QueryEngine::new(&graph, &corp, &index, &alt, DijkstraDistance::new(&graph));
    let rebuilt = engine.bknn(77, 5, &[hotel, bank], Op::Or);
    let da: Vec<Weight> = after.iter().map(|&(_, d)| d).collect();
    let db: Vec<Weight> = rebuilt.iter().map(|&(_, d)| d).collect();
    assert_eq!(da, db, "rebuild changed results!");
    println!("  rebuilt index returns identical results — lazy updates were exact all along.");
}
