//! Face-off: K-SPIN vs the keyword-aggregated baselines (G-tree, ROAD,
//! FS-FBS) and plain network expansion, on one workload — a miniature of
//! the paper's Table 1.
//!
//! ```text
//! cargo run --release --example baseline_faceoff
//! ```

use std::time::Instant;

use kspin::adapters::HlDistance;
use kspin::prelude::*;
use kspin_ch::{ChConfig, ContractionHierarchy};
use kspin_core::query::baseline::{ine_bknn, ine_topk};
use kspin_fsfbs::{FsFbs, FsFbsConfig};
use kspin_graph::generate::{road_network, RoadNetworkConfig};
use kspin_gtree::tree::GtreeConfig;
use kspin_gtree::{GTree, GtreeSpatialKeyword, OccurrenceMode};
use kspin_hl::HubLabels;
use kspin_road::RoadIndex;
use kspin_text::generate::{corpus, CorpusConfig};
use kspin_text::workload::{queries, WorkloadConfig};

fn main() {
    println!("building world (25k vertices)…");
    let graph = road_network(&RoadNetworkConfig::new(25_000, 99));
    let (corp, vocab) = corpus(&CorpusConfig::new(graph.num_vertices(), 99));

    println!("building every index…");
    let ch = ContractionHierarchy::build(&graph, &ChConfig::default());
    let hl = HubLabels::build(&ch);
    let gt = GTree::build(&graph, &GtreeConfig::default());
    let sk = GtreeSpatialKeyword::build(&gt, &graph, &corp);
    let road = RoadIndex::build(&gt, &graph, &corp);
    let fsfbs = FsFbs::build(&graph, &corp, &hl, FsFbsConfig::default());
    let alt = kspin_alt::AltIndex::build(&graph, 16, kspin_alt::LandmarkStrategy::Farthest, 0);
    let index = KspinIndex::build(&graph, &corp, &KspinConfig::default());
    let _ = vocab;

    let wl = WorkloadConfig {
        seed_terms: vec![0, 1, 2, 3, 4],
        objects_per_term: 4,
        vertices_per_vector: 8,
        seed: 17,
    };
    let qs = queries(&corp, &wl, graph.num_vertices(), 2);
    println!("workload: {} queries (2 keywords, k = 10)\n", qs.len());

    let time = |label: &str, mut f: Box<dyn FnMut(&kspin_text::workload::Query) -> usize + '_>| {
        let t0 = Instant::now();
        let mut n = 0usize;
        for q in &qs {
            n += f(q);
        }
        let dt = t0.elapsed().as_secs_f64();
        println!(
            "  {:<22} {:>9.1} queries/s  ({} results)",
            label,
            qs.len() as f64 / dt,
            n
        );
    };

    println!("top-10 spatial keyword queries:");
    {
        let mut e = QueryEngine::new(&graph, &corp, &index, &alt, HlDistance::new(&hl));
        time(
            "KS-HL (K-SPIN)",
            Box::new(move |q| e.top_k(q.vertex, 10, &q.terms).len()),
        );
    }
    time(
        "G-tree",
        Box::new(|q| {
            sk.top_k(q.vertex, 10, &q.terms, OccurrenceMode::Aggregated)
                .0
                .len()
        }),
    );
    time(
        "Gtree-Opt",
        Box::new(|q| {
            sk.top_k(q.vertex, 10, &q.terms, OccurrenceMode::PerKeyword)
                .0
                .len()
        }),
    );
    time(
        "ROAD",
        Box::new(|q| road.top_k(q.vertex, 10, &q.terms).len()),
    );
    time(
        "network expansion",
        Box::new(|q| ine_topk(&graph, &corp, q.vertex, 10, &q.terms).len()),
    );

    println!("\ndisjunctive B10NN queries:");
    {
        let mut e = QueryEngine::new(&graph, &corp, &index, &alt, HlDistance::new(&hl));
        time(
            "KS-HL (K-SPIN)",
            Box::new(move |q| e.bknn(q.vertex, 10, &q.terms, Op::Or).len()),
        );
    }
    time(
        "G-tree",
        Box::new(|q| {
            sk.bknn(q.vertex, 10, &q.terms, false, OccurrenceMode::Aggregated)
                .0
                .len()
        }),
    );
    time(
        "FS-FBS",
        Box::new(|q| fsfbs.bknn(q.vertex, 10, &q.terms, false).len()),
    );
    time(
        "network expansion",
        Box::new(|q| ine_bknn(&graph, &corp, q.vertex, 10, &q.terms, Op::Or).len()),
    );

    println!("\nindex sizes:");
    println!(
        "  K-SPIN keyword index   {:>9} KiB",
        index.size_bytes() / 1024
    );
    println!(
        "  ALT lower bounds       {:>9} KiB",
        alt.size_bytes() / 1024
    );
    println!("  CH                     {:>9} KiB", ch.size_bytes() / 1024);
    println!("  HL                     {:>9} KiB", hl.size_bytes() / 1024);
    println!(
        "  G-tree (+ keywords)    {:>9} KiB",
        (gt.size_bytes() + sk.size_bytes()) / 1024
    );
    println!(
        "  ROAD overlay           {:>9} KiB",
        road.size_bytes() / 1024
    );
    println!(
        "  FS-FBS                 {:>9} KiB",
        fsfbs.size_bytes() / 1024
    );
}
