//! [`NetworkDistance`] adapters for the pluggable distance techniques.
//!
//! The paper's Network Distance Module (§3 module 2) accepts *any* exact
//! point-to-point technique; these adapters wire the workspace's three
//! index-based oracles into the trait, producing the paper's variants:
//!
//! * [`ChDistance`] → **KS-CH** (small index, moderate queries),
//! * [`HlDistance`] → **KS-HL** (the KS-PHL stand-in: big index, fastest
//!   queries),
//! * [`GtreeNetworkDistance`] → **KS-GT** (the §7.4 apples-to-apples
//!   comparison: K-SPIN consuming G-tree's own index, with
//!   materialization and matrix-operation counting intact).

use kspin_ch::{ChQuery, ContractionHierarchy};
use kspin_core::NetworkDistance;
use kspin_graph::{Graph, VertexId, Weight};
use kspin_gtree::{GTree, GtreeDistance};
use kspin_hl::HubLabels;

/// Contraction Hierarchies as a Network Distance Module.
pub struct ChDistance<'a> {
    query: ChQuery<'a>,
}

impl<'a> ChDistance<'a> {
    /// Wraps a built hierarchy.
    pub fn new(ch: &'a ContractionHierarchy) -> Self {
        ChDistance {
            query: ChQuery::new(ch),
        }
    }
}

impl NetworkDistance for ChDistance<'_> {
    fn distance(&mut self, s: VertexId, t: VertexId) -> Weight {
        self.query.distance(s, t)
    }

    fn name(&self) -> &'static str {
        "CH"
    }
}

/// Hub labels as a Network Distance Module.
pub struct HlDistance<'a> {
    labels: &'a HubLabels,
}

impl<'a> HlDistance<'a> {
    /// Wraps built labels.
    pub fn new(labels: &'a HubLabels) -> Self {
        HlDistance { labels }
    }
}

impl NetworkDistance for HlDistance<'_> {
    fn distance(&mut self, s: VertexId, t: VertexId) -> Weight {
        self.labels.distance(s, t)
    }

    fn name(&self) -> &'static str {
        "HL"
    }
}

/// G-tree assembly as a Network Distance Module (KS-GT).
///
/// Keeps the assembly pinned to the last source, so consecutive
/// distance computations from one query vertex reuse materialized border
/// arrays — "already computed partial network distances are re-used…
/// described as materialization by Zhong et al." (§7.4).
pub struct GtreeNetworkDistance<'a> {
    gt: &'a GTree,
    graph: &'a Graph,
    inner: Option<GtreeDistance<'a>>,
    ops: u64,
}

impl<'a> GtreeNetworkDistance<'a> {
    /// Wraps a built G-tree.
    pub fn new(gt: &'a GTree, graph: &'a Graph) -> Self {
        GtreeNetworkDistance {
            gt,
            graph,
            inner: None,
            ops: 0,
        }
    }

    /// Matrix operations across all sources so far (Fig. 16's metric).
    pub fn total_ops(&self) -> u64 {
        self.ops + self.inner.as_ref().map_or(0, GtreeDistance::ops)
    }

    /// Zeroes the matrix-operation counter.
    pub fn reset_ops(&mut self) {
        self.ops = 0;
        if let Some(inner) = &mut self.inner {
            inner.reset_ops();
        }
    }
}

impl NetworkDistance for GtreeNetworkDistance<'_> {
    fn distance(&mut self, s: VertexId, t: VertexId) -> Weight {
        match &mut self.inner {
            Some(inner) if inner.source() == s => inner.distance(t),
            _ => {
                if let Some(prev) = self.inner.take() {
                    self.ops += prev.ops();
                }
                let mut fresh = GtreeDistance::new(self.gt, self.graph, s);
                let d = fresh.distance(t);
                self.inner = Some(fresh);
                d
            }
        }
    }

    fn name(&self) -> &'static str {
        "G-tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kspin_ch::ChConfig;
    use kspin_graph::generate::{road_network, RoadNetworkConfig};
    use kspin_graph::Dijkstra;
    use kspin_gtree::tree::GtreeConfig;

    #[test]
    fn all_adapters_agree_with_dijkstra() {
        let g = road_network(&RoadNetworkConfig::new(600, 55));
        let ch = ContractionHierarchy::build(&g, &ChConfig::default());
        let hl = HubLabels::build(&ch);
        let gt = GTree::build(&g, &GtreeConfig::default());

        let mut oracles: Vec<Box<dyn NetworkDistance + '_>> = vec![
            Box::new(ChDistance::new(&ch)),
            Box::new(HlDistance::new(&hl)),
            Box::new(GtreeNetworkDistance::new(&gt, &g)),
        ];
        let mut dij = Dijkstra::new(g.num_vertices());
        for (s, t) in [(0u32, 599u32), (17, 403), (5, 5), (100, 101)] {
            let t = t.min(g.num_vertices() as u32 - 1);
            let want = dij.one_to_one(&g, s, t);
            for o in &mut oracles {
                assert_eq!(o.distance(s, t), want, "{} ({s},{t})", o.name());
            }
        }
    }

    #[test]
    fn gtree_adapter_counts_ops_across_sources() {
        let g = road_network(&RoadNetworkConfig::new(400, 57));
        let gt = GTree::build(&g, &GtreeConfig::default());
        let mut d = GtreeNetworkDistance::new(&gt, &g);
        let _ = d.distance(0, 399.min(g.num_vertices() as u32 - 1));
        let _ = d.distance(1, 200);
        assert!(d.total_ops() > 0);
        d.reset_ops();
        assert_eq!(d.total_ops(), 0);
    }
}
