//! # K-SPIN — Keyword Separated Indexing for spatial keyword queries on road networks
//!
//! A from-scratch Rust implementation of
//! *K-SPIN: Efficiently Processing Spatial Keyword Queries on Road Networks*
//! (Abeywickrama, Cheema, Khan — ICDE 2020 / TKDE), including every
//! substrate and baseline its evaluation depends on.
//!
//! ## Quick start
//!
//! ```
//! use kspin::prelude::*;
//!
//! // 1. A road network + POI corpus (here: synthetic; DIMACS loaders in
//! //    kspin_graph::dimacs).
//! let graph = kspin::graph::generate::road_network(
//!     &kspin::graph::generate::RoadNetworkConfig::new(2_000, 42));
//! let (corpus, vocab) = kspin::text::generate::corpus(
//!     &kspin::text::generate::CorpusConfig::new(graph.num_vertices(), 42));
//!
//! // 2. Build the K-SPIN system: ALT lower bounds + per-keyword indexes.
//! let system = KspinSystem::build(graph, corpus, vocab, &KspinConfig::default());
//!
//! // 3. Query with any network distance module — plain Dijkstra here.
//! let mut engine = system.engine_dijkstra();
//! let hotel = system.vocab.get("hotel").unwrap();
//! let results = engine.bknn(0, 5, &[hotel], Op::Or);
//! assert!(results.len() <= 5);
//! ```
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |---|---|
//! | [`core`] | the K-SPIN framework: index, heaps, query processors |
//! | [`graph`] | CSR road networks, Dijkstra, DIMACS I/O, generators |
//! | [`text`] | corpora, inverted lists, impacts, relevance scoring |
//! | [`nvd`] | exact + ρ-approximate Network Voronoi Diagrams |
//! | [`alt`] | ALT landmark lower bounds |
//! | [`ch`] | Contraction Hierarchies |
//! | [`hl`] | hub labels (2-hop labels; the PHL stand-in) |
//! | [`gtree`] | G-tree baseline + KS-GT distance module |
//! | [`road`] | ROAD baseline |
//! | [`fsfbs`] | FS-FBS baseline |
//! | [`adapters`] | [`NetworkDistance`] impls wiring CH/HL/G-tree into the framework |

pub use kspin_alt as alt;
pub use kspin_ch as ch;
pub use kspin_core as core;
pub use kspin_fsfbs as fsfbs;
pub use kspin_graph as graph;
pub use kspin_gtree as gtree;
pub use kspin_hl as hl;
pub use kspin_nvd as nvd;
pub use kspin_road as road;
pub use kspin_text as text;

pub mod adapters;
pub mod snapshot;

use kspin_alt::{AltIndex, LandmarkStrategy};
use kspin_core::{DijkstraDistance, KspinConfig, KspinIndex, NetworkDistance, QueryEngine};
use kspin_graph::Graph;
use kspin_text::{Corpus, Vocabulary};

/// Common imports for applications.
pub mod prelude {
    pub use crate::adapters::{ChDistance, GtreeNetworkDistance, HlDistance};
    pub use crate::snapshot::SnapshotExtras;
    pub use crate::KspinSystem;
    pub use kspin_core::snapshot::{SnapshotError, SnapshotFile};
    pub use kspin_core::{
        BatchExecutor, BoolExpr, DijkstraDistance, KspinConfig, KspinIndex, LowerBound,
        NetworkDistance, Op, QueryEngine, QueryStats, SeedCacheConfig, ServingQuery, ServingResult,
    };
    pub use kspin_graph::{Graph, VertexId, Weight};
    pub use kspin_text::{Corpus, ObjectId, TermId, Vocabulary};
}

/// A fully assembled K-SPIN deployment: road network, corpus, ALT lower
/// bounds and the Keyword Separated Index, with engines for any distance
/// module.
///
/// This is the convenience entry point; applications with bespoke needs can
/// assemble [`QueryEngine`] from the parts directly.
pub struct KspinSystem {
    pub graph: Graph,
    pub corpus: Corpus,
    pub vocab: Vocabulary,
    pub alt: AltIndex,
    pub index: KspinIndex,
}

impl KspinSystem {
    /// Number of ALT landmarks used by [`KspinSystem::build`] (the paper's
    /// m = 16, §5.1).
    pub const NUM_LANDMARKS: usize = 16;

    /// Builds ALT + the Keyword Separated Index over the inputs.
    pub fn build(graph: Graph, corpus: Corpus, vocab: Vocabulary, config: &KspinConfig) -> Self {
        let alt = AltIndex::build(&graph, Self::NUM_LANDMARKS, LandmarkStrategy::Farthest, 0);
        let index = KspinIndex::build(&graph, &corpus, config);
        KspinSystem {
            graph,
            corpus,
            vocab,
            alt,
            index,
        }
    }

    /// An engine over the index-free Dijkstra distance module.
    pub fn engine_dijkstra(&self) -> QueryEngine<'_, DijkstraDistance<'_>> {
        self.engine(DijkstraDistance::new(&self.graph))
    }

    /// An engine over any [`NetworkDistance`] module — the paper's
    /// "Flexibility" contribution in one method.
    pub fn engine<D: NetworkDistance>(&self, dist: D) -> QueryEngine<'_, D> {
        QueryEngine::new(&self.graph, &self.corpus, &self.index, &self.alt, dist)
    }

    /// Resolves keyword strings to term ids, skipping unknown words.
    pub fn terms(&self, words: &[&str]) -> Vec<kspin_text::TermId> {
        words.iter().filter_map(|w| self.vocab.get(w)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kspin_core::Op;

    #[test]
    fn system_builds_and_answers() {
        let graph = kspin_graph::generate::road_network(
            &kspin_graph::generate::RoadNetworkConfig::new(800, 1),
        );
        let (corpus, vocab) = kspin_text::generate::corpus(
            &kspin_text::generate::CorpusConfig::new(graph.num_vertices(), 1),
        );
        let system = KspinSystem::build(graph, corpus, vocab, &KspinConfig::default());
        let mut engine = system.engine_dijkstra();
        let ts = system.terms(&["hotel", "restaurant"]);
        assert_eq!(ts.len(), 2);
        let r = engine.bknn(0, 3, &ts, Op::Or);
        assert!(!r.is_empty());
        let t = engine.top_k(0, 3, &ts);
        assert!(!t.is_empty());
    }
}
