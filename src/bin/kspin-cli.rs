//! `kspin-cli` — generate datasets, build indexes, and answer spatial
//! keyword queries interactively.
//!
//! ```text
//! kspin-cli generate --vertices 50000 --seed 7 --out data/city
//!     writes data/city.gr, data/city.co, data/city.kw
//!
//! kspin-cli query --data data/city [--dist dijkstra|bidijkstra|astar|ch|hl] [--rho 5]
//!     loads the dataset, builds K-SPIN, then reads commands from stdin:
//!       bknn <vertex> <k> and|or <keyword> [keyword ...]
//!       topk <vertex> <k> <keyword> [keyword ...]
//!       expr <vertex> <k> <kw> and ( <kw> or <kw> )   (single-level mix)
//!       stats | help | quit
//!
//! kspin-cli snapshot save data/city.snap --data data/city [--rho 5] [--ch true]
//!     builds the full system and persists it as one flat binary snapshot
//!
//! kspin-cli snapshot load data/city.snap
//!     validates the snapshot, prints header + per-section metadata, and
//!     reloads the system (millisecond warm start instead of a rebuild)
//! ```

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::process::ExitCode;

use kspin::prelude::*;
use kspin_ch::{ChConfig, ContractionHierarchy};
use kspin_hl::HubLabels;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("snapshot") => cmd_snapshot(&args[1..]),
        _ => {
            eprintln!(
                "usage: kspin-cli <generate|query|snapshot> [options]   (see --help in source)"
            );
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Tiny flag parser: `--key value` pairs.
fn flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(k) = it.next() {
        let key = k
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {k:?}"))?;
        let v = it
            .next()
            .ok_or_else(|| format!("flag --{key} needs a value"))?;
        out.insert(key.to_string(), v.clone());
    }
    Ok(out)
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let f = flags(args)?;
    let vertices: usize = f
        .get("vertices")
        .map(|s| s.parse().map_err(|_| "bad --vertices"))
        .transpose()?
        .unwrap_or(20_000);
    let seed: u64 = f
        .get("seed")
        .map(|s| s.parse().map_err(|_| "bad --seed"))
        .transpose()?
        .unwrap_or(42);
    let out = f.get("out").ok_or("--out <prefix> is required")?;

    eprintln!("generating {vertices}-vertex road network (seed {seed})…");
    let graph = kspin::graph::generate::road_network(
        &kspin::graph::generate::RoadNetworkConfig::new(vertices, seed),
    );
    let (corpus, vocab) = kspin::text::generate::corpus(&kspin::text::generate::CorpusConfig::new(
        graph.num_vertices(),
        seed,
    ));
    let write = |path: String, f: &dyn Fn(&mut BufWriter<File>) -> std::io::Result<()>| {
        let file = File::create(&path).map_err(|e| format!("{path}: {e}"))?;
        let mut w = BufWriter::new(file);
        f(&mut w).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("  wrote {path}");
        Ok::<(), String>(())
    };
    write(format!("{out}.gr"), &|w| {
        kspin::graph::dimacs::write_gr(&graph, w)
    })?;
    write(format!("{out}.co"), &|w| {
        kspin::graph::dimacs::write_co(&graph, w)
    })?;
    write(format!("{out}.kw"), &|w| {
        kspin::text::io::write_kw(&corpus, &vocab, w)
    })?;
    eprintln!(
        "done: |V|={} |E|={} |O|={} |W|={}",
        graph.num_vertices(),
        graph.num_edges(),
        corpus.num_objects(),
        corpus.num_terms()
    );
    Ok(())
}

fn cmd_snapshot(args: &[String]) -> Result<(), String> {
    let sub = args.first().map(String::as_str);
    let path = args
        .get(1)
        .filter(|p| !p.starts_with("--"))
        .ok_or("usage: kspin-cli snapshot <save|load> <path> [options]")?;
    match sub {
        Some("save") => cmd_snapshot_save(path, &args[2..]),
        Some("load") => cmd_snapshot_load(path),
        _ => Err("usage: kspin-cli snapshot <save|load> <path> [options]".into()),
    }
}

fn cmd_snapshot_save(path: &str, args: &[String]) -> Result<(), String> {
    let f = flags(args)?;
    let prefix = f.get("data").ok_or("--data <prefix> is required")?;
    let rho: usize = f
        .get("rho")
        .map(|s| s.parse().map_err(|_| "bad --rho"))
        .transpose()?
        .unwrap_or(5);
    let with_ch = f.get("ch").map(String::as_str) == Some("true");

    eprintln!("loading {prefix}.gr / .co / .kw…");
    let open = |ext: &str| -> Result<BufReader<File>, String> {
        File::open(format!("{prefix}.{ext}"))
            .map(BufReader::new)
            .map_err(|e| format!("{prefix}.{ext}: {e}"))
    };
    let mut builder = kspin::graph::dimacs::read_gr(open("gr")?).map_err(|e| e.to_string())?;
    kspin::graph::dimacs::read_co(open("co")?, &mut builder).map_err(|e| e.to_string())?;
    let graph = builder.build();
    let (corpus, vocab) = kspin::text::io::read_kw(open("kw")?).map_err(|e| e.to_string())?;

    eprintln!("building K-SPIN (rho = {rho})…");
    let config = KspinConfig {
        rho,
        ..KspinConfig::default()
    };
    let system = KspinSystem::build(graph, corpus, vocab, &config);
    let mut extras = kspin::snapshot::SnapshotExtras::default();
    if with_ch {
        eprintln!("building contraction hierarchy…");
        extras.ch = Some(ContractionHierarchy::build(
            &system.graph,
            &ChConfig::default(),
        ));
    }

    let t0 = std::time::Instant::now();
    let bytes = system.save_snapshot(&extras);
    std::fs::write(path, &bytes).map_err(|e| format!("{path}: {e}"))?;
    eprintln!(
        "wrote {path}: {} bytes ({:.1} B/vertex) in {:.1} ms",
        bytes.len(),
        bytes.len() as f64 / system.graph.num_vertices() as f64,
        t0.elapsed().as_secs_f64() * 1e3
    );
    Ok(())
}

fn cmd_snapshot_load(path: &str) -> Result<(), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let f = kspin::prelude::SnapshotFile::validate(&bytes).map_err(|e| e.to_string())?;
    println!(
        "{path}: {} bytes, format v{}, {} sections",
        f.len_bytes(),
        kspin_core::snapshot::format::FORMAT_VERSION,
        f.num_sections()
    );
    for line in kspin::snapshot::describe_sections(&f) {
        println!("{line}");
    }

    let t0 = std::time::Instant::now();
    let (system, extras) = KspinSystem::load_snapshot(&bytes).map_err(|e| e.to_string())?;
    println!(
        "loaded in {:.1} ms: |V|={} |E|={} |O|={} |W|={}, {} NVD keywords, {} list keywords{}{}{}",
        t0.elapsed().as_secs_f64() * 1e3,
        system.graph.num_vertices(),
        system.graph.num_edges(),
        system.corpus.num_objects(),
        system.corpus.num_terms(),
        system.index.stats().nvd_terms,
        system.index.stats().small_terms,
        if extras.ch.is_some() { ", +CH" } else { "" },
        if extras.hierarchy.is_some() {
            ", +G-tree"
        } else {
            ""
        },
        if extras.relabeling.is_some() {
            ", +relabeling"
        } else {
            ""
        },
    );
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let f = flags(args)?;
    let prefix = f.get("data").ok_or("--data <prefix> is required")?;
    let rho: usize = f
        .get("rho")
        .map(|s| s.parse().map_err(|_| "bad --rho"))
        .transpose()?
        .unwrap_or(5);
    let dist_kind = f.get("dist").map(String::as_str).unwrap_or("bidijkstra");

    eprintln!("loading {prefix}.gr / .co / .kw…");
    let open = |ext: &str| -> Result<BufReader<File>, String> {
        File::open(format!("{prefix}.{ext}"))
            .map(BufReader::new)
            .map_err(|e| format!("{prefix}.{ext}: {e}"))
    };
    let mut builder = kspin::graph::dimacs::read_gr(open("gr")?).map_err(|e| e.to_string())?;
    kspin::graph::dimacs::read_co(open("co")?, &mut builder).map_err(|e| e.to_string())?;
    let graph = builder.build();
    let (corpus, vocab) = kspin::text::io::read_kw(open("kw")?).map_err(|e| e.to_string())?;
    eprintln!(
        "  |V|={} |E|={} |O|={} |W|={}",
        graph.num_vertices(),
        graph.num_edges(),
        corpus.num_objects(),
        corpus.num_terms()
    );

    eprintln!("building K-SPIN (rho = {rho})…");
    let config = KspinConfig {
        rho,
        ..KspinConfig::default()
    };
    let system = KspinSystem::build(graph, corpus, vocab, &config);
    eprintln!(
        "  {} NVD keywords, {} list keywords, {:.2}s",
        system.index.stats().nvd_terms,
        system.index.stats().small_terms,
        system.index.stats().build_seconds
    );

    // Optional heavier distance modules are built on demand.
    let ch;
    let hl;
    enum Dist<'a> {
        Dij(kspin_core::DijkstraDistance<'a>),
        Bi(kspin_core::BiDijkstraDistance<'a>),
        Astar(kspin_core::AltAstarDistance<'a>),
        Ch(kspin::adapters::ChDistance<'a>),
        Hl(kspin::adapters::HlDistance<'a>),
    }
    let mut dist = match dist_kind {
        "dijkstra" => Dist::Dij(kspin_core::DijkstraDistance::new(&system.graph)),
        "bidijkstra" => Dist::Bi(kspin_core::BiDijkstraDistance::new(&system.graph)),
        "astar" => Dist::Astar(kspin_core::AltAstarDistance::new(
            &system.graph,
            &system.alt,
        )),
        "ch" => {
            eprintln!("building CH…");
            ch = ContractionHierarchy::build(&system.graph, &ChConfig::default());
            Dist::Ch(kspin::adapters::ChDistance::new(&ch))
        }
        "hl" => {
            eprintln!("building CH + hub labels…");
            ch = ContractionHierarchy::build(&system.graph, &ChConfig::default());
            hl = HubLabels::build(&ch);
            Dist::Hl(kspin::adapters::HlDistance::new(&hl))
        }
        other => return Err(format!("unknown --dist {other:?}")),
    };

    // One engine per command keeps borrows simple; index reuse dominates.
    macro_rules! with_engine {
        (|$e:ident| $body:expr) => {
            match &mut dist {
                Dist::Dij(d) => {
                    let mut $e = QueryEngine::new(
                        &system.graph,
                        &system.corpus,
                        &system.index,
                        &system.alt,
                        d,
                    );
                    $body
                }
                Dist::Bi(d) => {
                    let mut $e = QueryEngine::new(
                        &system.graph,
                        &system.corpus,
                        &system.index,
                        &system.alt,
                        d,
                    );
                    $body
                }
                Dist::Astar(d) => {
                    let mut $e = QueryEngine::new(
                        &system.graph,
                        &system.corpus,
                        &system.index,
                        &system.alt,
                        d,
                    );
                    $body
                }
                Dist::Ch(d) => {
                    let mut $e = QueryEngine::new(
                        &system.graph,
                        &system.corpus,
                        &system.index,
                        &system.alt,
                        d,
                    );
                    $body
                }
                Dist::Hl(d) => {
                    let mut $e = QueryEngine::new(
                        &system.graph,
                        &system.corpus,
                        &system.index,
                        &system.alt,
                        d,
                    );
                    $body
                }
            }
        };
    }

    eprintln!("ready — type `help` for commands");
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        let tokens: Vec<&str> = line.split_ascii_whitespace().collect();
        match tokens.as_slice() {
            [] => {}
            ["quit"] | ["exit"] => break,
            ["help"] => {
                println!("  bknn <vertex> <k> and|or <kw> [kw…]");
                println!("  topk <vertex> <k> <kw> [kw…]");
                println!("  stats | quit");
            }
            ["stats"] => {
                println!(
                    "  index {} KiB, ALT {} KiB",
                    system.index.size_bytes() / 1024,
                    system.alt.size_bytes() / 1024
                );
            }
            ["bknn", vertex, k, op, kws @ ..] if !kws.is_empty() => {
                let (Ok(v), Ok(k)) = (vertex.parse::<u32>(), k.parse::<usize>()) else {
                    println!("  bad vertex/k");
                    continue;
                };
                if v as usize >= system.graph.num_vertices() {
                    println!("  vertex out of range");
                    continue;
                }
                let op = match *op {
                    "and" => Op::And,
                    "or" => Op::Or,
                    _ => {
                        println!("  operator must be and|or");
                        continue;
                    }
                };
                let terms = system.terms(kws);
                if terms.len() < kws.len() {
                    println!(
                        "  note: {} unknown keyword(s) ignored",
                        kws.len() - terms.len()
                    );
                }
                let t0 = std::time::Instant::now();
                let results: Vec<(ObjectId, Weight)> = with_engine!(|e| e.bknn(v, k, &terms, op));
                let us = t0.elapsed().as_secs_f64() * 1e6;
                for (o, d) in &results {
                    let words: Vec<&str> = system
                        .corpus
                        .doc(*o)
                        .iter()
                        .map(|p| system.vocab.term(p.term))
                        .collect();
                    println!(
                        "  object {o} @ vertex {} dist {d}  [{}]",
                        system.corpus.vertex_of(*o),
                        words.join(" ")
                    );
                }
                println!("  ({} results in {us:.0} µs)", results.len());
            }
            ["topk", vertex, k, kws @ ..] if !kws.is_empty() => {
                let (Ok(v), Ok(k)) = (vertex.parse::<u32>(), k.parse::<usize>()) else {
                    println!("  bad vertex/k");
                    continue;
                };
                if v as usize >= system.graph.num_vertices() {
                    println!("  vertex out of range");
                    continue;
                }
                let terms = system.terms(kws);
                let t0 = std::time::Instant::now();
                let results: Vec<(ObjectId, f64)> = with_engine!(|e| e.top_k(v, k, &terms));
                let us = t0.elapsed().as_secs_f64() * 1e6;
                for (o, s) in &results {
                    println!(
                        "  object {o} @ vertex {} score {s:.1}",
                        system.corpus.vertex_of(*o)
                    );
                }
                println!("  ({} results in {us:.0} µs)", results.len());
            }
            _ => println!("  unrecognized command (try `help`)"),
        }
        out.flush().map_err(|e| format!("write stdout: {e}"))?;
    }
    Ok(())
}
