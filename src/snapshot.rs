//! Full-system snapshots: one flat binary file holding an entire K-SPIN
//! deployment, loadable in milliseconds.
//!
//! [`KspinSystem::save_snapshot`] serializes the graph, corpus,
//! vocabulary, Keyword Separated Index and ALT tables — plus any
//! optional acceleration structures handed over in [`SnapshotExtras`]
//! (CH upward graph, G-tree hierarchy, the active relabeling) — into
//! the canonical section layout of [`kspin_core::snapshot`].
//! [`KspinSystem::load_snapshot`] validates the bytes fail-closed
//! (checksums first, then every structural invariant through the
//! crates' own `from_*_parts` constructors) and reassembles a system
//! that serves *bit-identically* to the one that was saved — no
//! rebuild, no re-derivation of impact scores, no NVD sweeps.
//!
//! Serialization is canonical: save → load → save is byte-identical,
//! and a logically equal system always produces the same bytes. Both
//! properties are test-enforced (`tests/snapshot_roundtrip.rs`).

use crate::KspinSystem;
use kspin_ch::ContractionHierarchy;
use kspin_core::snapshot::format::section;
use kspin_core::snapshot::{
    decode_alt, decode_ch, decode_corpus, decode_graph, decode_index, decode_relabeling,
    encode_alt, encode_ch, encode_corpus, encode_graph, encode_index, encode_relabeling, format,
    SnapshotError, SnapshotFile, SnapshotWriter,
};
use kspin_graph::Relabeling;
use kspin_gtree::partition::Hierarchy;
use kspin_text::Vocabulary;

pub use kspin_core::snapshot::{FormatError, IndexStore, SectionLabel, SectionView};

/// Optional acceleration structures that ride along in a snapshot.
///
/// The core system (graph, corpus, vocabulary, index, ALT) is always
/// present; these are saved only when provided and decode to `None`
/// when their sections are absent.
#[derive(Default)]
pub struct SnapshotExtras {
    /// Contraction hierarchy: node order + upward adjacency.
    pub ch: Option<ContractionHierarchy>,
    /// G-tree partition hierarchy (the tree shape; distance matrices are
    /// rebuilt, not snapshotted).
    pub hierarchy: Option<Hierarchy>,
    /// The vertex renumbering the saved system was built under.
    pub relabeling: Option<Relabeling>,
}

impl std::fmt::Debug for SnapshotExtras {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotExtras")
            .field("ch", &self.ch.is_some())
            .field("hierarchy", &self.hierarchy.is_some())
            .field("relabeling", &self.relabeling.is_some())
            .finish()
    }
}

/// Appends the vocabulary as an offset table over pooled UTF-8 bytes.
pub fn encode_vocab(w: &mut SnapshotWriter, v: &Vocabulary) {
    let terms = v.terms();
    let mut offsets = Vec::with_capacity(terms.len() + 1);
    let mut bytes = Vec::new();
    offsets.push(0u32);
    for t in terms {
        bytes.extend_from_slice(t.as_bytes());
        offsets.push(bytes.len() as u32);
    }
    w.put_u32s(section::VOCAB_OFFSETS, &offsets);
    w.put_bytes(section::VOCAB_BYTES, &bytes);
}

/// Reassembles the vocabulary through [`Vocabulary::from_terms`].
///
/// # Errors
/// Missing/mistyped sections, malformed offsets, non-UTF-8 term bytes,
/// or duplicate terms.
pub fn decode_vocab(f: &SnapshotFile<'_>) -> Result<Vocabulary, SnapshotError> {
    let offsets = f.u32s(section::VOCAB_OFFSETS)?;
    let bytes = f.bytes(section::VOCAB_BYTES)?;
    if offsets.first() != Some(&0) {
        return Err(SnapshotError::decode(
            section::VOCAB_OFFSETS,
            "vocabulary offsets must start at 0",
        ));
    }
    // lint:allow(no-as-cast-in-decode) — lossless u32 → usize widening
    if offsets.last().map(|&e| e as usize) != Some(bytes.len()) {
        return Err(SnapshotError::decode(
            section::VOCAB_OFFSETS,
            "vocabulary offsets must end at the pooled byte count",
        ));
    }
    let terms: Vec<String> = offsets
        .windows(2)
        .map(|win| {
            // TAINT-OK(windows(2) yields exactly two elements per window)
            let (lo, hi) = (win[0], win[1]);
            // lint:allow(no-as-cast-in-decode) — lossless u32 → usize widening
            let slice = bytes.get(lo as usize..hi as usize).ok_or_else(|| {
                SnapshotError::decode(
                    section::VOCAB_OFFSETS,
                    format!("term offsets {lo}..{hi} out of order or range"),
                )
            })?;
            String::from_utf8(slice.to_vec()).map_err(|e| {
                SnapshotError::decode(section::VOCAB_BYTES, format!("term is not UTF-8: {e}"))
            })
        })
        .collect::<Result<_, _>>()?;
    Vocabulary::from_terms(terms).map_err(|e| SnapshotError::decode(section::VOCAB_OFFSETS, e))
}

/// Appends the G-tree partition hierarchy's flat arrays.
pub fn encode_hierarchy(w: &mut SnapshotWriter, h: &Hierarchy) {
    let (parent, child_offsets, child_data, depth, vert_offsets, vert_data, leaf_of) =
        h.flat_parts();
    w.put_u32s(section::HIER_PARENT, parent);
    w.put_u32s(section::HIER_CHILD_OFFSETS, child_offsets);
    w.put_u32s(section::HIER_CHILD_DATA, child_data);
    w.put_u32s(section::HIER_DEPTH, depth);
    w.put_u32s(section::HIER_VERT_OFFSETS, vert_offsets);
    w.put_u32s(section::HIER_VERT_DATA, vert_data);
    w.put_u32s(section::HIER_LEAF_OF, leaf_of);
}

/// Reassembles the hierarchy when present, `Ok(None)` when the snapshot
/// was saved without one.
///
/// # Errors
/// Mistyped/partial sections or any violated tree invariant.
pub fn decode_hierarchy(f: &SnapshotFile<'_>) -> Result<Option<Hierarchy>, SnapshotError> {
    use section::*;
    if !f.has(HIER_PARENT) {
        return Ok(None);
    }
    Hierarchy::from_flat_parts(
        f.u32s(HIER_PARENT)?,
        f.u32s(HIER_CHILD_OFFSETS)?,
        f.u32s(HIER_CHILD_DATA)?,
        f.u32s(HIER_DEPTH)?,
        f.u32s(HIER_VERT_OFFSETS)?,
        f.u32s(HIER_VERT_DATA)?,
        f.u32s(HIER_LEAF_OF)?,
    )
    .map(Some)
    .map_err(|e| SnapshotError::decode(HIER_PARENT, e))
}

impl KspinSystem {
    /// Serializes the whole deployment (plus `extras`) into the canonical
    /// snapshot byte layout. The result validates, round-trips through
    /// [`KspinSystem::load_snapshot`] bit-identically, and re-saves to the
    /// same bytes.
    pub fn save_snapshot(&self, extras: &SnapshotExtras) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        encode_graph(&mut w, &self.graph);
        encode_corpus(&mut w, &self.corpus);
        encode_vocab(&mut w, &self.vocab);
        encode_index(&mut w, &self.index);
        encode_alt(&mut w, &self.alt);
        if let Some(ch) = &extras.ch {
            encode_ch(&mut w, ch);
        }
        if let Some(h) = &extras.hierarchy {
            encode_hierarchy(&mut w, h);
        }
        if let Some(r) = &extras.relabeling {
            encode_relabeling(&mut w, r);
        }
        w.finish()
    }

    /// Validates `bytes` fail-closed and reassembles the deployment.
    ///
    /// Checksums are verified before any decoding, then every structure
    /// passes through its crate's validating constructor, so corrupt or
    /// adversarial input yields a structured [`SnapshotError`] naming the
    /// failing section — never a panic, never a partially-initialized
    /// system. The reloaded system serves bit-identically to the saved
    /// one (test-enforced).
    ///
    /// # Errors
    /// [`SnapshotError::Format`] for framing/checksum violations;
    /// [`SnapshotError::Decode`] for structural ones.
    pub fn load_snapshot(bytes: &[u8]) -> Result<(KspinSystem, SnapshotExtras), SnapshotError> {
        let f = SnapshotFile::validate(bytes)?;
        let graph = decode_graph(&f)?;
        let corpus = decode_corpus(&f)?;
        let vocab = decode_vocab(&f)?;
        let index = decode_index(&f)?;
        let alt = decode_alt(&f, graph.num_vertices())?;
        let extras = SnapshotExtras {
            ch: decode_ch(&f)?,
            hierarchy: decode_hierarchy(&f)?,
            relabeling: decode_relabeling(&f)?,
        };
        Ok((
            KspinSystem {
                graph,
                corpus,
                vocab,
                alt,
                index,
            },
            extras,
        ))
    }
}

/// One formatted line per section: id, name, kind, element count and
/// payload bytes — the CLI's `snapshot load` metadata listing.
pub fn describe_sections(f: &SnapshotFile<'_>) -> Vec<String> {
    (0..f.num_sections())
        .filter_map(|i| f.section_at(i))
        .map(|s| {
            let kind = match s.kind {
                format::KIND_U32 => "u32",
                format::KIND_U64 => "u64",
                format::KIND_F64 => "f64",
                format::KIND_BYTES => "bytes",
                _ => "?",
            };
            format!(
                "  [{:>2}] {:<20} {:<5} {:>12} elems {:>14} bytes",
                s.id,
                format::section_name(s.id),
                kind,
                s.count,
                s.payload.len()
            )
        })
        .collect()
}
