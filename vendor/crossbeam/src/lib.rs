//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace only uses `crossbeam::thread::scope` for structured
//! fork-join parallelism. Since Rust 1.63 the standard library provides
//! [`std::thread::scope`] with the same guarantees (borrowing from the
//! enclosing stack frame, joining on scope exit), so this crate is a thin
//! API adapter — same call shape, same `Result` signature, zero unsafe.

#![forbid(unsafe_code)]

/// Scoped-thread API (`crossbeam::thread`).
pub mod thread {
    use std::any::Any;

    /// A scope handle passed to the [`scope`] closure and to every spawned
    /// worker (crossbeam hands workers the scope so they can spawn too).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    // Manual impls: the wrapped reference is Copy regardless of lifetimes.
    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped worker. The closure receives the scope again,
        /// mirroring crossbeam's signature (`|_|` at most call sites).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Handle joining one scoped worker.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the worker; `Err` carries its panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    /// Runs `f` with a scope whose spawned threads may borrow from the
    /// caller's stack; all threads are joined before `scope` returns.
    ///
    /// Crossbeam returns `Err` when a child panicked without being joined.
    /// `std::thread::scope` instead re-raises such panics, so the `Err` arm
    /// here is unreachable in practice — every call site in this workspace
    /// joins its handles explicitly anyway.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_and_borrows() {
        let counter = AtomicUsize::new(0);
        let out = crate::thread::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..4 {
                handles.push(s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed)));
            }
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
                .len()
        })
        .unwrap();
        assert_eq!(out, 4);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn join_reports_worker_panic() {
        let res = crate::thread::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            h.join()
        })
        .unwrap();
        assert!(res.is_err());
    }

    #[test]
    fn workers_can_spawn_from_the_scope_they_receive() {
        let counter = AtomicUsize::new(0);
        crate::thread::scope(|s| {
            s.spawn(|inner| {
                inner
                    .spawn(|_| counter.fetch_add(1, Ordering::Relaxed))
                    .join()
                    .unwrap();
            })
            .join()
            .unwrap();
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
