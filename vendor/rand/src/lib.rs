//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides exactly the surface the workspace uses: [`rngs::StdRng`] seeded
//! via [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods
//! (`gen`, `gen_range`, `gen_bool`), [`seq::SliceRandom::shuffle`] and
//! [`seq::index::sample`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — statistically solid for the synthetic-data generators and
//! fully deterministic per seed (the property every seeded test relies on).
//!
//! Streams differ from the real `rand::rngs::StdRng` (ChaCha12), which is
//! fine: no test in this workspace pins exact draws, only determinism and
//! distributional properties.

#![forbid(unsafe_code)]

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly distributed value of `T` (`f64` in `[0, 1)`, fair
    /// `bool`, full-range integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform draw from `range` (half-open or inclusive; panics on an
    /// empty range, like the real crate).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types drawable uniformly from their "standard" distribution by
/// [`Rng::gen`].
pub trait Standard {
    /// One uniform draw.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// One uniform draw from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Draws a uniform integer in `[0, n)` by rejection from the top 64 bits,
/// avoiding modulo bias (n = 0 is rejected by callers beforehand).
fn uniform_below<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    // Lemire-style widening multiply with rejection.
    let threshold = n.wrapping_neg() % n;
    loop {
        let m = (rng.next_u64() as u128) * (n as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return (lo as i128 + rng.next_u64() as i128) as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic RNG: xoshiro256++ with SplitMix64
    /// seeding (Blackman & Vigna). Not the real `StdRng` stream, but the
    /// same trait surface and determinism guarantees.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended for xoshiro seeding.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (`rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and choosing.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }

    /// Index sampling without replacement (`rand::seq::index`).
    pub mod index {
        use crate::{Rng, RngCore};

        /// Distinct indices sampled from `0..length`.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Iterates the sampled indices by value.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether nothing was sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// The indices as a plain vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;

            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices uniformly from `0..length`
        /// via a partial Fisher–Yates pass. Panics if `amount > length`
        /// (mirrors the real crate).
        pub fn sample<R: RngCore>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from {length}"
            );
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::index::sample;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        let mut c = rngs::StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&x));
            let y: usize = rng.gen_range(0..7);
            assert!(y < 7);
            let f: f64 = rng.gen_range(1.0..=1.5);
            assert!((1.0..=1.5).contains(&f));
        }
    }

    #[test]
    fn gen_f64_is_roughly_uniform() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn sample_yields_distinct_in_range() {
        let mut rng = rngs::StdRng::seed_from_u64(3);
        let v = sample(&mut rng, 100, 40);
        assert_eq!(v.len(), 40);
        let mut seen: Vec<usize> = v.iter().collect();
        assert!(seen.iter().all(|&i| i < 100));
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 40);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = rngs::StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = rngs::StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.2)).count();
        assert!((1700..2300).contains(&hits), "hits {hits}");
    }
}
