//! Offline stand-in for the `criterion` crate.
//!
//! Supports the surface this workspace's `micro` bench uses: `Criterion`
//! with builder-style config, `bench_function`/`Bencher::iter`,
//! [`black_box`], and the `criterion_group!`/`criterion_main!` macros.
//! Measurement is a simple calibrated wall-clock loop printing mean
//! iteration time — adequate for relative comparisons; no statistics,
//! plots, or report files.
//!
//! When invoked by `cargo test` (benchmarks compiled in test mode receive
//! `--test` on their command line), each benchmark runs exactly one
//! iteration so test runs stay fast.

#![forbid(unsafe_code)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work; delegates to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Benchmark driver: times closures handed to [`Criterion::bench_function`].
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    smoke_test: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let smoke_test = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            smoke_test,
        }
    }
}

impl Criterion {
    /// Target number of timed samples.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Untimed warm-up budget before sampling.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: if self.smoke_test { 1 } else { 0 },
            elapsed: Duration::ZERO,
            warm_up: self.warm_up_time,
            measurement: self.measurement_time,
            samples: self.sample_size,
            smoke_test: self.smoke_test,
        };
        f(&mut b);
        if b.iters > 0 {
            let per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
            println!("{name:<40} {:>12.1} ns/iter ({} iters)", per_iter, b.iters);
        }
        self
    }
}

/// Times the closure passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    smoke_test: bool,
}

impl Bencher {
    /// Calibrates, warms up, then times `routine` until the measurement
    /// budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke_test {
            black_box(routine());
            self.iters = 1;
            self.elapsed = Duration::from_nanos(1);
            return;
        }
        // Warm-up while estimating per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        // Split the measurement budget into `samples` timed batches.
        let batch = ((self.measurement.as_secs_f64() / self.samples as f64) / per_iter.max(1e-9))
            .ceil()
            .max(1.0) as u64;
        let mut total_iters = 0u64;
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += start.elapsed();
            total_iters += batch;
            if total >= self.measurement {
                break;
            }
        }
        self.iters = total_iters;
        self.elapsed = total;
    }
}

/// Declares a benchmark group; mirrors criterion's two invocation forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        c.smoke_test = false;
        let mut runs = 0u64;
        c.bench_function("counter", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn smoke_test_mode_runs_once() {
        let mut c = Criterion {
            smoke_test: true,
            ..Default::default()
        };
        let mut runs = 0u64;
        c.bench_function("one-shot", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }
}
