//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(..)]`), range and tuple
//! strategies, [`Strategy::prop_map`], the `collection::{vec, btree_set,
//! btree_map}` strategies, [`any`], and the `prop_assert*` macros.
//!
//! Semantics differ from real proptest in two deliberate ways: case
//! generation is a pure function of the test name and case index (fully
//! reproducible, no persistence files), and failures panic immediately
//! without shrinking — a failing case prints its inputs via the assert
//! message instead.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub use rand::Rng as __Rng;

/// Deterministic per-case RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// RNG for case `case` of the test named `name`.
    pub fn for_case(name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        ))
    }
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Runner configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A generator of values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($s:ident . $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// A strategy always yielding clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    type Strategy: Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rand::Rng::gen::<bool>(rng)
    }
}

impl Arbitrary for bool {
    type Strategy = Any<bool>;

    fn arbitrary() -> Any<bool> {
        Any(core::marker::PhantomData)
    }
}

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::{BTreeMap, BTreeSet};

    /// Vector of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rand::Rng::gen_range(rng, self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Set of distinct `element` values with a size drawn from `size`.
    /// The element space must be able to supply `size.start` distinct
    /// values, as with real proptest.
    pub fn btree_set<S>(element: S, size: core::ops::Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = rand::Rng::gen_range(rng, self.size.clone());
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target.max(self.size.start) && attempts < 64 * (target + 1) {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// Map with distinct `key` values and independent `value`s.
    pub fn btree_map<K, V>(
        key: K,
        value: V,
        size: core::ops::Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy { key, value, size }
    }

    /// See [`btree_map`].
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: core::ops::Range<usize>,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let target = rand::Rng::gen_range(rng, self.size.clone());
            let mut out = BTreeMap::new();
            let mut attempts = 0usize;
            while out.len() < target.max(self.size.start) && attempts < 64 * (target + 1) {
                out.insert(self.key.generate(rng), self.value.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// The glob-import prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Property assertion; panics with the case inputs in the message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Each test runs `config.cases` deterministic cases seeded from the test
/// name and case index. No shrinking: the first failing case panics with
/// its assertion message.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases as u64 {
                let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::for_case("ranges", 0);
        for _ in 0..200 {
            let (a, b) = (1u32..5, 0usize..3).generate(&mut rng);
            assert!((1..5).contains(&a));
            assert!(b < 3);
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = crate::TestRng::for_case("collections", 1);
        for _ in 0..50 {
            let v = crate::collection::vec(0u32..10, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            let s = crate::collection::btree_set(0u32..40, 1..8).generate(&mut rng);
            assert!(!s.is_empty() && s.len() < 8);
            let m = crate::collection::btree_map(0u32..40, 0u32..6, 1..12).generate(&mut rng);
            assert!(!m.is_empty() && m.len() < 12);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_draws_args(x in 0u32..100, flip in any::<bool>()) {
            prop_assert!(x < 100);
            let _ = flip;
        }

        #[test]
        fn prop_map_applies(doubled in (0u32..50).prop_map(|x| x * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert!(doubled < 100);
        }
    }
}
